"""A1–A3: ablations of the design choices DESIGN.md calls out.

* A1 — filesystem block size vs WAN streaming throughput (the in-flight
  window is ``readahead x block_size``, so block size is a WAN lever).
* A2 — NSD server count vs aggregate throughput: the server GbE NICs are
  the paper's 64 Gb/s (→128 Gb/s) aggregate design point (§5/§8).
* A3 — TCP window vs single-stream rate at the paper's 80 ms RTT: why
  2005-default 64 KiB windows made single-stream tools hopeless and
  parallel NSD streams essential.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.e8_latency import measure
from repro.experiments.harness import ExperimentResult
from repro.topology.sdsc2005 import build_sdsc2005
from repro.util.tables import Table
from repro.util.units import GB, Gbps, KiB, MB, MiB
from repro.workloads.mpiio import mpiio_collective
from repro.workloads.viz import VizReader


def run_a1_blocksize(
    block_sizes: Sequence[int] = (KiB(256), KiB(512), MiB(1), MiB(2), MiB(4)),
    read_bytes: float = MB(256),
    readahead: int = 8,
) -> ExperimentResult:
    """A1: WAN streaming read rate vs filesystem block size."""
    result = ExperimentResult(
        exp_id="A1",
        title="ablation: block size vs WAN streaming throughput",
        paper_claim="(design choice: production fs used ~1 MiB blocks)",
    )
    table = Table(["block size KiB", "WAN read MB/s"], title=f"readahead={readahead}")
    for bs in block_sizes:
        scenario = build_sdsc2005(
            nsd_servers=16,
            ds4100_count=8,
            sdsc_clients=1,
            anl_clients=1,
            ncsa_clients=0,
            block_size=int(bs),
            store_data=False,
        )
        g = scenario.gfs
        stage = scenario.mount_clients("sdsc", 1, pagepool_bytes=MiB(512))[0]

        def seed(stage=stage):
            handle = yield stage.open("/stream", "w", create=True)
            yield stage.write(handle, int(read_bytes))
            yield stage.close(handle)

        g.run(until=g.sim.process(seed(), name="seed"))
        mount = scenario.mount_clients("anl", 1, readahead=readahead,
                                       pagepool_bytes=MiB(512))[0]
        t0 = g.sim.now
        g.run(until=VizReader(mount, "/stream", chunk=int(bs)).run())
        rate = read_bytes / (g.sim.now - t0)
        table.add_row([int(bs) // 1024, rate / 1e6])
        result.metrics[f"rate_bs{int(bs) // 1024}k"] = rate
    result.table = table
    result.notes = "in-flight window = readahead x block size; RTT ~56 ms"
    return result


def run_a2_server_scaling(
    server_counts: Sequence[int] = (8, 16, 32, 64),
    clients: int = 32,
    region_bytes: int = MiB(64),
) -> ExperimentResult:
    """A2: aggregate read rate vs NSD server count (server NICs bind)."""
    result = ExperimentResult(
        exp_id="A2",
        title="ablation: NSD server count vs aggregate read rate",
        paper_claim="§5/§8: server GbE aggregate is the design point (64 -> 128 Gb/s)",
    )
    table = Table(
        ["servers", "agg read MB/s", "per-server MB/s"],
        title=f"{clients} machine-room clients, MPI-IO read",
    )
    for servers in server_counts:
        scenario = build_sdsc2005(
            nsd_servers=servers,
            ds4100_count=max(4, servers // 2),
            sdsc_clients=clients,
            anl_clients=0,
            ncsa_clients=0,
            store_data=False,
        )
        g = scenario.gfs
        mounts = scenario.mount_clients("sdsc", clients)
        g.run(until=mpiio_collective(mounts, "/f", "write",
                                     region_bytes=region_bytes,
                                     transfer_bytes=MiB(1)))
        for m in mounts:
            m.pool.invalidate(scenario.fs.namespace.resolve("/f").ino)
        r = g.run(until=mpiio_collective(mounts, "/f", "read",
                                         region_bytes=region_bytes,
                                         transfer_bytes=MiB(1)))
        rate = r.extra["rate"]
        table.add_row([servers, rate / 1e6, rate / servers / 1e6])
        result.metrics[f"rate_{servers}srv"] = rate
    result.table = table
    result.notes = "rate grows with server NIC aggregate until clients bind"
    return result


def run_a3_window(
    windows: Sequence[int] = (KiB(64), KiB(256), MiB(1), MiB(4), MiB(16)),
    rtt: float = 0.080,
    link_rate: float = Gbps(10),
) -> ExperimentResult:
    """A3: single-stream throughput vs TCP window at the SC'02 RTT."""
    result = ExperimentResult(
        exp_id="A3",
        title="ablation: TCP window vs single-stream rate at 80 ms RTT",
        paper_claim="(mechanism: why untuned 2005 stacks needed parallel streams)",
    )
    table = Table(
        ["window KiB", "1 stream MB/s", "32 streams Gb/s"],
        title=f"RTT {rtt * 1e3:.0f} ms, 10 GbE",
    )
    for window in windows:
        one = measure(rtt, 1, float(window), link_rate, GB(1))
        many = measure(rtt, 32, float(window), link_rate, GB(4))
        table.add_row([int(window) // 1024, one / 1e6, many * 8 / 1e9])
        result.metrics[f"single_{int(window) // 1024}k"] = one
        result.metrics[f"parallel32_{int(window) // 1024}k"] = many
    result.table = table
    result.notes = (
        "single stream ~ window/RTT; with 32 streams line rate needs ~4 MiB "
        "windows — 2005-default 64 KiB windows would need ~450 streams, which "
        "is what the NSD client x server mesh provides"
    )
    return result


def run_a4_upgrade_path(
    clients: int = 48,
    nsd_servers: int = 16,
    region_bytes: int = MiB(48),
) -> ExperimentResult:
    """A4: the §8 upgrade — doubling each NSD server's GbE.

    "Add another GbE connection to each IA64 server, increasing the
    aggregate bandwidth to 128 Gb/s." Oversubscribe the servers with
    clients and compare read aggregates at 1 vs 2 GbE per server.
    """
    result = ExperimentResult(
        exp_id="A4",
        title="§8 upgrade path: 1 vs 2 GbE per NSD server",
        paper_claim="doubling server GbE doubles the aggregate to 128 Gb/s",
    )
    table = Table(
        ["GbE/server", "server agg Gb/s", "read MB/s"],
        title=f"{clients} clients over {nsd_servers} servers",
    )
    from repro.util.units import Gbps

    for nics in (1, 2):
        scenario = build_sdsc2005(
            nsd_servers=nsd_servers,
            ds4100_count=nsd_servers,
            sdsc_clients=clients,
            anl_clients=0,
            ncsa_clients=0,
            server_nic=Gbps(nics),
            store_data=False,
        )
        g = scenario.gfs
        mounts = scenario.mount_clients("sdsc", clients)
        g.run(until=mpiio_collective(mounts, "/f", "write",
                                     region_bytes=region_bytes,
                                     transfer_bytes=MiB(1)))
        for m in mounts:
            m.pool.invalidate(scenario.fs.namespace.resolve("/f").ino)
        r = g.run(until=mpiio_collective(mounts, "/f", "read",
                                         region_bytes=region_bytes,
                                         transfer_bytes=MiB(1)))
        rate = r.extra["rate"]
        table.add_row([nics, nics * nsd_servers, rate / 1e6])
        result.metrics[f"read_rate_{nics}gbe"] = rate
    result.table = table
    result.metrics["upgrade_gain"] = (
        result.metrics["read_rate_2gbe"] / result.metrics["read_rate_1gbe"]
    )
    return result


def run_a5_degraded(read_bytes: float = MB(400)) -> ExperimentResult:
    """A5: failure behaviour — degraded RAID service and NSD failover.

    Fig 9's hot spares and GPFS's primary/backup NSD servers exist for the
    hours-long windows this ablation measures: streaming read rate from
    one DS4100 LUN while healthy / degraded / rebuilding, and the
    full-stack aggregate before and after an NSD server node dies. The
    node death is scripted through a :class:`~repro.faults.FaultSchedule`
    and *detected* by disk-lease expiry — nothing marks the node down by
    hand.
    """
    from repro.faults import FaultSchedule, attach_faults
    from repro.sim import Simulation
    from repro.storage import make_ds4100

    result = ExperimentResult(
        exp_id="A5",
        title="ablation: degraded RAID service and NSD server failover",
        paper_claim="(Fig 9 hot spares / NSD server lists exist for these windows)",
    )
    table = Table(["state", "LUN read MB/s"], title="one DS4100 LUN, streaming read")
    rates = {}
    for state in ("healthy", "degraded", "rebuilding"):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        lun = array.luns[0]
        if state != "healthy":
            lun.raid.fail_disk()
        if state == "rebuilding":
            array.hot_spares -= 0  # spare assignment handled by rebuild()
            lun.raid.rebuild()
        t0 = sim.now
        done = lun.io("read", read_bytes)
        sim.run(until=done)
        rate = read_bytes / (sim.now - t0)
        rates[state] = rate
        table.add_row([state, rate / 1e6])
        result.metrics[f"lun_rate_{state}"] = rate
    # full-stack failover: aggregate read before/after killing a server
    scenario = build_sdsc2005(
        nsd_servers=8, ds4100_count=4, sdsc_clients=8,
        anl_clients=0, ncsa_clients=0, store_data=False,
    )
    g = scenario.gfs
    mounts = scenario.mount_clients("sdsc")
    g.run(until=mpiio_collective(mounts, "/f", "write",
                                 region_bytes=MiB(32), transfer_bytes=MiB(1)))
    ino = scenario.fs.namespace.resolve("/f").ino
    for m in mounts:
        m.pool.invalidate(ino)
    before = g.run(until=mpiio_collective(mounts, "/f", "read",
                                          region_bytes=MiB(32),
                                          transfer_bytes=MiB(1))).extra["rate"]
    t_crash = g.sim.now + 0.1
    harness = attach_faults(
        g.sim,
        scenario.fs.service,
        manager_node=scenario.fs.manager_node,
        schedule=FaultSchedule().crash_node(t_crash, "nsd00"),
        engine=g.engine,
        network=g.network,
        lease_duration=1.0,
    )
    g.run(until=harness.declared_dead("nsd00"))
    detection_latency = g.sim.now - t_crash
    for m in mounts:
        m.pool.invalidate(ino)
    after = g.run(until=mpiio_collective(mounts, "/f", "read",
                                         region_bytes=MiB(32),
                                         transfer_bytes=MiB(1))).extra["rate"]
    harness.stop()
    result.metrics["fs_rate_before_failover"] = before
    result.metrics["fs_rate_after_failover"] = after
    result.metrics["failovers"] = float(scenario.fs.service.failovers)
    result.metrics["detection_latency"] = detection_latency
    table.add_row(["fs: 8 servers up", before / 1e6])
    table.add_row(["fs: 1 server down", after / 1e6])
    result.table = table
    result.notes = (
        "the dead server's NSDs fail over to its neighbour, which then "
        "carries two servers' traffic on one NIC"
    )
    return result


def run_a6_loss(
    losses=(0.0, 1e-6, 1e-5, 1e-4, 1e-3),
    rtt: float = 0.080,
    link_rate: float = Gbps(10),
) -> ExperimentResult:
    """A6: packet loss vs throughput (Mathis), and how parallelism hides it.

    Clean research backbones made loss negligible for the paper's
    demonstrations; this ablation shows how little loss it would have taken
    to change that — and that the NSD stream mesh buys loss tolerance too.
    """
    result = ExperimentResult(
        exp_id="A6",
        title="ablation: loss rate vs throughput at 80 ms (Mathis cap)",
        paper_claim="(clean TeraGrid/SCinet paths: loss effectively zero)",
    )
    table = Table(
        ["loss", "1 stream MB/s", "32 streams Gb/s"],
        title="8 MiB windows, jumbo frames, 10 GbE, 80 ms RTT",
    )
    from repro.net.flow import FlowEngine
    from repro.net.tcp import TcpModel
    from repro.net.topology import Network
    from repro.sim import Simulation

    def measure_loss(loss, streams, nbytes):
        sim = Simulation()
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", link_rate, delay=rtt / 2, efficiency=0.94)
        tcp = TcpModel(window=float(MiB(8)), mss=8960, loss=loss)
        engine = FlowEngine(sim, net, default_tcp=tcp)
        events = [engine.transfer("a", "b", nbytes / streams) for _ in range(streams)]
        sim.run(until=sim.all_of(events))
        return nbytes / sim.now

    for loss in losses:
        one = measure_loss(loss, 1, GB(1))
        many = measure_loss(loss, 32, GB(4))
        label = "0" if loss == 0 else f"{loss:.0e}"
        table.add_row([label, one / 1e6, many * 8 / 1e9])
        key = label.replace("-", "m")
        result.metrics[f"single_{key}"] = one
        result.metrics[f"parallel32_{key}"] = many
    result.table = table
    result.notes = (
        "Mathis: rate <= (MSS/RTT)(C/sqrt(p)); parallel streams multiply the "
        "aggregate until the link binds"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_a3_window()))
    print()
    print(format_result(run_a1_blocksize()))
    print()
    print(format_result(run_a2_server_scaling()))
    print()
    print(format_result(run_a4_upgrade_path()))
    print()
    print(format_result(run_a5_degraded()))
