"""The Fig 11 benchmark: MPI-IO collective access to one shared file.

"MPI IO, 128 MB Block Size, 1 MB Transfer Size" — each of N client nodes
owns a disjoint 128 MB region of a shared file and moves it in 1 MB
transfers; reported speed is aggregate bytes over wall time, swept over
node count. Disjoint regions mean no token conflicts — the configuration
GPFS is designed to make scale.
"""

from __future__ import annotations

from typing import List

from repro.sim.kernel import Event
from repro.util.units import MiB
from repro.workloads.base import WorkloadResult, payload_for


def mpiio_collective(
    mounts: List,
    path: str,
    kind: str = "write",
    region_bytes: int = MiB(128),
    transfer_bytes: int = MiB(1),
    create: bool = True,
) -> Event:
    """Run one collective pass; event value is a :class:`WorkloadResult`.

    ``mounts`` — one mount per MPI rank (node). Rank i owns
    ``[i * region, (i+1) * region)`` of the shared file.
    """
    if kind not in ("read", "write"):
        raise ValueError("kind must be 'read' or 'write'")
    if not mounts:
        raise ValueError("need at least one mount")
    if region_bytes < transfer_bytes or transfer_bytes < 1:
        raise ValueError("need region_bytes >= transfer_bytes >= 1")
    sim = mounts[0].sim
    return sim.process(
        _collective(mounts, path, kind, int(region_bytes), int(transfer_bytes), create),
        name=f"mpiio-{kind}",
    )


def _collective(mounts, path, kind, region, transfer, create):
    sim = mounts[0].sim
    t0 = sim.now
    ranks = [
        sim.process(
            _rank_io(mounts[i], path, kind, i * region, region, transfer, create and i == 0 and kind == "write"),
            name=f"mpiio-r{i}",
        )
        for i in range(len(mounts))
    ]
    # ranks run concurrently; the collective completes at the barrier
    yield sim.all_of(ranks)
    elapsed = sim.now - t0
    total = float(region * len(mounts))
    result = WorkloadResult(name=f"mpiio-{kind}", elapsed=elapsed, ops=len(mounts))
    if kind == "read":
        result.bytes_read = total
    else:
        result.bytes_written = total
    result.extra["nodes"] = float(len(mounts))
    result.extra["rate"] = total / elapsed if elapsed > 0 else 0.0
    return result


def _rank_io(mount, path, kind, offset, region, transfer, creator):
    handle = yield mount.open(
        path, "r" if kind == "read" else "r+", create=True
    )
    pos = offset
    end = offset + region
    while pos < end:
        n = min(transfer, end - pos)
        if kind == "read":
            yield mount.pread(handle, pos, n)
        else:
            yield mount.pwrite(handle, pos, payload_for(mount, n))
        pos += n
    if kind == "write":
        yield mount.fsync(handle)
    yield mount.close(handle)
