"""Smoke tests: every experiment harness runs (scaled down) and produces a
well-formed result whose qualitative shape holds.

The full-size runs live in benchmarks/; these keep the harness code under
unit-test coverage at a few seconds each.
"""


from repro.experiments.ablations import run_a1_blocksize, run_a2_server_scaling, run_a3_window
from repro.experiments.e5_anl_remote import run_e5_anl
from repro.experiments.e6_deisa import run_e6_deisa
from repro.experiments.e7_staging_vs_gfs import run_e7
from repro.experiments.e8_latency import run_e8
from repro.experiments.e9_auth import run_e9
from repro.experiments.e10_hsm import run_e10
from repro.experiments.fig2_sc02 import run_fig2
from repro.experiments.fig5_sc03 import run_fig5
from repro.experiments.fig8_sc04 import run_fig8
from repro.experiments.fig11_scaling import run_fig11
from repro.experiments.harness import format_result
from repro.util.units import GB, KiB, MB, MiB


def well_formed(result):
    text = format_result(result)
    assert result.exp_id and result.title and result.paper_claim
    assert result.table is not None
    assert text


def test_fig2_smoke():
    result = run_fig2(total_bytes=GB(3))
    well_formed(result)
    assert result.metric("mean_rate") > MB(600)


def test_fig5_smoke():
    result = run_fig5(
        nsd_servers=12, sdsc_viz_nodes=6, ncsa_viz_nodes=2,
        per_node_bytes=MB(400), restart_after=2.0, restart_pause=1.5,
    )
    well_formed(result)
    assert result.metric("peak_rate") > 0
    assert result.metric("dip_rate") < result.metric("peak_rate")


def test_fig8_smoke():
    result = run_fig8(
        nsd_servers=12, clients_per_site=6, per_client_phase_bytes=MB(48),
        phases=2,
    )
    well_formed(result)
    assert len(result.series) == 4  # 3 lanes + aggregate
    assert result.metric("aggregate_mean") > 0


def test_fig11_smoke():
    result = run_fig11(
        node_counts=(1, 4), region_bytes=MiB(16), transfer_bytes=MiB(1),
        nsd_servers=16, ds4100_count=8,
    )
    well_formed(result)
    assert result.metric("max_read") > result.metric("max_write")


def test_e5_smoke():
    result = run_e5_anl(anl_nodes=4, per_node_bytes=MB(32))
    well_formed(result)
    assert result.metric("per_node_rate") > 0


def test_e6_smoke():
    result = run_e6_deisa(per_pair_bytes=MB(80),
                          pairs=(("cineca", "fzj"), ("rzg", "idris")))
    well_formed(result)
    assert result.metric("min_read") > MB(90)


def test_e7_smoke():
    result = run_e7(dataset_bytes=GB(1), output_bytes=MB(64),
                    compute_seconds=10.0, fractions=(0.1, 1.0),
                    ncsa_clients=2)
    well_formed(result)
    assert result.metric("gfs_moved_0.1") < result.metric("staged_moved_0.1")


def test_e8_smoke():
    result = run_e8(rtts=(0.002, 0.080), stream_counts=(1, 16),
                    nbytes=GB(0.5))
    well_formed(result)
    assert result.metric("rate_rtt80_s16") > result.metric("rate_rtt80_s1")


def test_e9_smoke():
    result = run_e9(read_bytes=MB(24))
    well_formed(result)
    assert result.metric("read_rate_3DES") < result.metric("read_rate_AUTHONLY")
    assert result.metric("rw_on_ro_refused") == 1.0


def test_e10_smoke():
    result = run_e10(files=8, file_bytes=int(MB(16)), blocks_per_nsd=48)
    well_formed(result)
    assert result.metric("migrated_files") > 0


def test_e11_smoke():
    from repro.experiments.e11_bgl import run_e11_bgl
    from repro.util.units import Gbps

    result = run_e11_bgl(io_nodes=4, per_io_node_bytes=MB(32),
                         server_nics=(Gbps(1),), nsd_servers=16)
    well_formed(result)
    assert result.metric("read_rate_1gbe") > 0


def test_a4_smoke():
    from repro.experiments.ablations import run_a4_upgrade_path

    result = run_a4_upgrade_path(clients=8, nsd_servers=3, region_bytes=MiB(8))
    well_formed(result)
    assert result.metric("upgrade_gain") > 1.0


def test_a5_smoke():
    from repro.experiments.ablations import run_a5_degraded

    result = run_a5_degraded(read_bytes=MB(100))
    well_formed(result)
    assert result.metric("lun_rate_degraded") < result.metric("lun_rate_healthy")
    assert result.metric("failovers") > 0


def test_e12_smoke():
    from repro.experiments.e12_scec import run_e12_scec

    result = run_e12_scec(ranks=4, scaled_bytes=MB(64), nsd_servers=16,
                          ds4100_count=8)
    well_formed(result)
    assert result.metric("write_rate") > 0
    assert result.metric("drain_days") > 0


def test_a6_smoke():
    from repro.experiments.ablations import run_a6_loss

    result = run_a6_loss(losses=(0.0, 1e-4))
    well_formed(result)
    assert result.metric("single_1em04") < result.metric("single_0")


def test_a1_smoke():
    result = run_a1_blocksize(block_sizes=(KiB(256), MiB(1)), read_bytes=MB(48))
    well_formed(result)
    assert result.metric("rate_bs1024k") > result.metric("rate_bs256k")


def test_a2_smoke():
    result = run_a2_server_scaling(server_counts=(4, 8), clients=8,
                                   region_bytes=MiB(16))
    well_formed(result)
    assert result.metric("rate_8srv") > result.metric("rate_4srv")


def test_a3_smoke():
    result = run_a3_window(windows=(KiB(64), MiB(4)))
    well_formed(result)
    assert result.metric("single_4096k") > result.metric("single_64k")
