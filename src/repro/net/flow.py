"""Fluid flows and the flow engine.

A :class:`Flow` is ``nbytes`` moving along a routed path. The
:class:`FlowEngine` keeps the set of active flows; whenever it changes, it
re-solves max-min fair rates (:func:`repro.net.fairshare.max_min_rates`)
with each flow capped by its TCP model, advances everyone's residual bytes,
and schedules the next completion. Changes within one simulation instant
coalesce into a single re-solve.

Tags: each transfer may carry string tags ("wan", "sdsc->ncsa", ...); the
engine maintains an exact piecewise-constant aggregate-rate series per tag —
this is what the figure harnesses plot (e.g. the three SCinet link traces of
Fig 8).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.net.fairshare import max_min_rates
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.sim.kernel import Event, Simulation
from repro.util.timeseries import TimeSeries
from repro.util.units import GB

#: Residual-bytes slack treated as "finished" (guards float drift).
_DONE_EPS_SECONDS = 1e-9


class Flow:
    """One in-flight transfer."""

    __slots__ = (
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "cap",
        "path_ids",
        "one_way_delay",
        "tags",
        "done",
        "last_update",
        "start_time",
        "seq",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: float,
        cap: float,
        path_ids: Sequence[int],
        one_way_delay: float,
        tags: tuple[str, ...],
        done: Event,
        now: float,
    ) -> None:
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.cap = cap
        self.path_ids = list(path_ids)
        self.one_way_delay = one_way_delay
        self.tags = tags
        self.done = done
        self.last_update = now
        self.start_time = now
        self.seq = -1  # assigned by the engine for deterministic ordering

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.src}->{self.dst} {self.remaining:.3g}/{self.size:.3g}B "
            f"@{self.rate:.3g}B/s>"
        )


class FlowEngine:
    """Shared-bandwidth transfer service over one :class:`Network`."""

    def __init__(
        self,
        sim: Simulation,
        network: Network,
        local_rate: float = GB(2.0),
        default_tcp: Optional[TcpModel] = None,
    ) -> None:
        """``local_rate`` bounds same-node (loopback/memory) transfers."""
        if local_rate <= 0:
            raise ValueError("local_rate must be positive")
        self.sim = sim
        self.network = network
        self.local_rate = local_rate
        self.default_tcp = default_tcp or TcpModel()
        self.flows: Set[Flow] = set()
        self.bytes_moved = 0.0
        self.completed_flows = 0
        self._tag_series: Dict[str, TimeSeries] = {}
        self._recompute_pending = False
        self._timer_token = 0
        self._next_seq = 0

    # -- public API -----------------------------------------------------------

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        tcp: Optional[TcpModel] = None,
        cap: Optional[float] = None,
        tags: Iterable[str] = (),
    ) -> Event:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with the :class:`Flow`) when the last
        byte *arrives* at ``dst`` — i.e. after the path drains plus one-way
        propagation delay.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tcp = tcp or self.default_tcp
        links = self.network.path(src, dst)
        delay = sum(l.delay for l in links)
        rtt = self.network.rtt(src, dst) if links else 0.0
        flow_cap = tcp.rate_cap(rtt)
        if cap is not None:
            flow_cap = min(flow_cap, cap)
        if not links:
            flow_cap = min(flow_cap, self.local_rate)
        done = self.sim.event(name=f"xfer:{src}->{dst}")
        flow = Flow(
            src,
            dst,
            nbytes,
            flow_cap,
            [l.index for l in links],
            delay,
            tuple(tags),
            done,
            self.sim.now,
        )
        flow.seq = self._next_seq
        self._next_seq += 1
        if nbytes == 0:
            self.sim.schedule_callback(delay, lambda: done.succeed(flow))
            return done
        self.flows.add(flow)
        self._mark_dirty()
        return done

    def tag_rate_series(self, tag: str) -> TimeSeries:
        """Exact aggregate-rate trace (bytes/s) for flows carrying ``tag``."""
        series = self._tag_series.get(tag)
        if series is None:
            series = TimeSeries(name=tag)
            self._tag_series[tag] = series
        return series

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def poke(self) -> None:
        """Force a rate recompute at the current instant.

        Use after mutating link capacities (`Link.set_rate`) so active
        flows see the change immediately instead of at their next natural
        arrival/departure.
        """
        self._mark_dirty()

    def link_utilization(self) -> dict:
        """Instantaneous per-link used fraction (diagnostics).

        Keyed by link name; only links carrying at least one active flow
        appear.
        """
        used: Dict[int, float] = {}
        for flow in self.flows:
            for link_id in flow.path_ids:
                used[link_id] = used.get(link_id, 0.0) + flow.rate
        out = {}
        for link_id, rate in used.items():
            link = self.network.links[link_id]
            out[link.name] = rate / link.usable_rate
        return out

    # -- engine internals -------------------------------------------------------

    def _mark_dirty(self) -> None:
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule_callback(0.0, self._recompute, name="flow-recompute")

    def _advance_residuals(self, now: float) -> None:
        for f in self.flows:
            if now > f.last_update:
                f.remaining = max(0.0, f.remaining - f.rate * (now - f.last_update))
            f.last_update = now

    def _recompute(self) -> None:
        self._recompute_pending = False
        now = self.sim.now
        self._advance_residuals(now)
        self._finish_drained(now)
        if self.flows:
            order = sorted(self.flows, key=lambda f: f.seq)
            caps = self.network.link_capacities()
            rates = max_min_rates(
                caps,
                [f.path_ids for f in order],
                [f.cap for f in order],
            )
            for f, r in zip(order, rates):
                f.rate = float(r)
        self._snapshot_tags(now)
        self._schedule_next_completion(now)

    def _finish_drained(self, now: float) -> None:
        drained = [f for f in self.flows if f.remaining <= f.rate * _DONE_EPS_SECONDS or f.remaining <= 1e-6]
        for f in drained:
            self.flows.remove(f)
            f.rate = 0.0
            f.remaining = 0.0
            self.bytes_moved += f.size
            self.completed_flows += 1
            if f.one_way_delay > 0:
                self.sim.schedule_callback(
                    f.one_way_delay, lambda f=f: f.done.succeed(f), name="flow-arrive"
                )
            else:
                f.done.succeed(f)

    def _snapshot_tags(self, now: float) -> None:
        if not self._tag_series:
            # Lazily create series only for tags in use.
            for f in self.flows:
                for tag in f.tags:
                    self.tag_rate_series(tag)
        if not self._tag_series:
            return
        totals = {tag: 0.0 for tag in self._tag_series}
        for f in self.flows:
            for tag in f.tags:
                if tag not in totals:
                    totals[tag] = 0.0
                totals[tag] += f.rate
        for tag, total in totals.items():
            self.tag_rate_series(tag).add(now, total)

    def _schedule_next_completion(self, now: float) -> None:
        self._timer_token += 1
        if not self.flows:
            return
        token = self._timer_token
        horizon = math.inf
        for f in self.flows:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows with zero rate — network has no capacity for them"
            )
        self.sim.schedule_callback(
            max(horizon, 0.0), lambda: self._on_timer(token), name="flow-finish"
        )

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a newer schedule
        self._recompute()
