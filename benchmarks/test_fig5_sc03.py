"""E2 benchmark — Fig 5: SC'03 native WAN-GPFS over one 10 GbE."""

from repro.experiments.fig5_sc03 import run_fig5
from repro.util.units import GB, Gbps


def test_fig5_sc03(run_experiment):
    result = run_experiment(
        run_fig5,
        nsd_servers=40,
        sdsc_viz_nodes=16,
        ncsa_viz_nodes=4,
        per_node_bytes=GB(1.0),
    )
    # paper: peak almost 9 Gb/s of the 10 GbE
    assert Gbps(8) < result.metric("peak_rate") <= Gbps(10)
    # "over 1 GB/s was easily sustained"
    assert result.metric("median_rate") > 1e9
    # the dip: rate during the app restart collapses, then recovers
    assert result.metric("dip_rate") < 0.75 * result.metric("peak_rate")
    assert result.metric("recovery_rate") > 0.6 * result.metric("peak_rate")
