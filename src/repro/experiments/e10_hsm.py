"""E10 — §8 future work: HSM migrate/recall and the copyright-library model.

Paper: "we would like the GFS disk to form an integral part of a HSM, with
an automatic migration of unused data to tape, and the automatic recall of
requested data" plus dual-site archives ("SDSC and the Pittsburgh
Supercomputing Center are already providing remote second copies for each
other's archives").
"""

from __future__ import annotations

from repro.core.cluster import Gfs, NsdSpec
from repro.experiments.harness import ExperimentResult
from repro.hsm.manager import HsmManager, MigrationPolicy
from repro.hsm.replicate import ArchiveReplicator
from repro.hsm.tape import LTO2, TapeLibrary
from repro.util.tables import Table
from repro.util.units import Gbps, MB, MiB, fmt_time


def run_e10(
    files: int = 24,
    file_bytes: int = int(MB(64)),
    blocks_per_nsd: int = 512,
) -> ExperimentResult:
    g = Gfs(seed=5)
    net = g.network
    net.add_node("sdsc-sw", kind="switch")
    net.add_node("psc-sw", kind="switch")
    net.add_link("sdsc-sw", "psc-sw", Gbps(10), delay=0.030)
    servers = [f"s{i}" for i in range(4)]
    for s in servers:
        net.add_host(s, "sdsc-sw", Gbps(1), site="sdsc")
    net.add_host("hsm-mover", "sdsc-sw", Gbps(10), site="sdsc")
    net.add_host("psc-archive", "psc-sw", Gbps(10), site="psc")
    sdsc = g.add_cluster("sdsc", site="sdsc")
    sdsc.add_nodes(servers + ["hsm-mover"])
    fs = sdsc.mmcrfs(
        "gpfs",
        [NsdSpec(server=s, blocks=blocks_per_nsd) for s in servers],
        block_size=MiB(1),
        store_data=False,
    )
    mover = g.run(until=sdsc.mmmount("gpfs", "hsm-mover", pagepool_bytes=MiB(256)))
    library = TapeLibrary(g.sim, spec=LTO2, drives=4, cartridges=200, name="sdsc-silo")
    policy = MigrationPolicy(min_age=3600.0, high_water=0.55, low_water=0.30)
    hsm = HsmManager(mover, library, policy=policy)

    # populate the filesystem, ageing files progressively
    def populate():
        for i in range(files):
            handle = yield mover.open(f"/archive/f{i:03d}" if False else f"/f{i:03d}", "w", create=True)
            yield mover.write(handle, file_bytes)
            yield mover.close(handle)

    g.run(until=g.sim.process(populate(), name="populate"))
    now = g.sim.now
    for i in range(files):
        fs.namespace.resolve(f"/f{i:03d}").atime = now - (files - i) * 7200.0

    occupancy_before = hsm.resident_fraction()
    t0 = g.sim.now
    migrated = g.run(until=hsm.run_policy())
    policy_time = g.sim.now - t0
    occupancy_after = hsm.resident_fraction()

    # recall latency with the cartridge still mounted (seek + stream)
    t0 = g.sim.now
    g.run(until=hsm.recall(migrated[0]))
    recall_warm = g.sim.now - t0
    # force a dismount so the next recall pays the robot too
    for drive in library.drives:
        drive.mounted = None
    t0 = g.sim.now
    g.run(until=hsm.recall(migrated[1]))
    recall_cold = g.sim.now - t0

    # dual-copy replication to the partner site
    psc_library = TapeLibrary(g.sim, spec=LTO2, drives=4, cartridges=200, name="psc-silo")
    replicator = ArchiveReplicator(
        g.sim, g.engine, library, psc_library, "hsm-mover", "psc-archive"
    )
    t0 = g.sim.now
    replicated = g.run(until=replicator.replicate_all())
    replication_time = g.sim.now - t0

    result = ExperimentResult(
        exp_id="E10",
        title="§8: HSM water-mark migration, tape recall, dual-site archive",
        paper_claim="automatic migrate-to-tape / recall; remote second copies (SDSC<->PSC)",
    )
    result.metrics["occupancy_before"] = occupancy_before
    result.metrics["occupancy_after"] = occupancy_after
    result.metrics["migrated_files"] = float(len(migrated))
    result.metrics["recall_cold_s"] = recall_cold
    result.metrics["recall_warm_s"] = recall_warm
    result.metrics["replicated_segments"] = float(replicated)
    table = Table(["metric", "value"], title="HSM lifecycle")
    table.add_row(["disk occupancy before", f"{occupancy_before:.0%}"])
    table.add_row(["policy high/low water", "55% / 30%"])
    table.add_row(["files migrated", len(migrated)])
    table.add_row(["disk occupancy after", f"{occupancy_after:.0%}"])
    table.add_row(["policy run time", fmt_time(policy_time)])
    table.add_row(["cold recall (robot+seek+stream)", fmt_time(recall_cold)])
    table.add_row(["warm recall (tape mounted)", fmt_time(recall_warm)])
    table.add_row(["segments replicated to PSC", replicated])
    table.add_row(["replication time", fmt_time(replication_time)])
    result.table = table
    result.notes = "oldest-atime-first migration until below the low water mark"
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e10()))
