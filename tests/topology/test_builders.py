"""Tests for the scenario builders (paper configurations)."""

import pytest

from repro.topology import (
    TERAGRID_SITES,
    add_teragrid_backbone,
    build_deisa,
    build_sc02,
    build_sc03,
    build_sc04,
    build_sdsc2005,
)
from repro.net.topology import Network
from repro.util.units import Gbps, TB


class TestTeragrid:
    def test_backbone_shape(self):
        net = Network()
        add_teragrid_backbone(net)
        # every site reaches every other through the hubs
        for a in TERAGRID_SITES:
            for b in TERAGRID_SITES:
                if a != b:
                    assert net.path(f"{a}-sw", f"{b}-sw")

    def test_cross_hub_delay(self):
        net = Network()
        add_teragrid_backbone(net)
        # SDSC (LA) to NCSA (Chicago) crosses the backbone: ~29 ms one way
        assert 0.02 < net.one_way_delay("sdsc-sw", "ncsa-sw") < 0.04
        # ANL to NCSA stays within the Chicago hub: short
        assert net.one_way_delay("anl-sw", "ncsa-sw") < 0.01

    def test_unknown_site_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            add_teragrid_backbone(net, sites=("sdsc", "atlantis"))

    def test_site_metadata(self):
        assert TERAGRID_SITES["sdsc"]["role"] == "Data-Intensive"
        assert TERAGRID_SITES["sdsc"]["online_disk"] == TB(500)


class TestSc02:
    def test_rtt_is_80ms(self):
        s = build_sc02()
        assert s.network.rtt("sdsc-san", "baltimore-sf6800") == pytest.approx(0.080)

    def test_tunnel_ceiling(self):
        s = build_sc02(nishan_pairs=2)
        assert s.tunnel.forward.rate == pytest.approx(Gbps(8))

    def test_stream_read_validation(self):
        s = build_sc02()
        with pytest.raises(ValueError):
            s.client.stream_read(0)


class TestSc03:
    def test_scaled_build(self):
        s = build_sc03(nsd_servers=6, sdsc_viz_nodes=3, ncsa_viz_nodes=2,
                       with_disks=False)
        assert len(s.fs.nsds) == 6
        assert len(s.sdsc_mounts) == 3
        assert len(s.ncsa_mounts) == 2
        assert s.writer_mount is not None

    def test_single_10gbe_uplink(self):
        s = build_sc03(nsd_servers=4, sdsc_viz_nodes=1, ncsa_viz_nodes=1,
                       with_disks=False)
        path = s.gfs.network.path("flr-nsd00", "sdsc-viz00")
        uplinks = [l for l in path if l.src == "floor-sw"]
        assert len(uplinks) == 1
        assert uplinks[0].rate == pytest.approx(Gbps(10))


class TestSc04:
    def test_lanes_assigned_round_robin(self):
        s = build_sc04(nsd_servers=6, sdsc_clients=2, ncsa_clients=2, arrays=2)
        tags = {srv.tags[0] for srv in s.fs.service.servers.values()}
        assert tags == {"lane0", "lane1", "lane2"}

    def test_three_uplinks(self):
        s = build_sc04(nsd_servers=3, sdsc_clients=1, ncsa_clients=1, arrays=1)
        net = s.gfs.network
        for k in range(3):
            assert net.path(f"floor-sw{k}", "chi-hub")

    def test_mounts_authenticated(self):
        s = build_sc04(nsd_servers=3, sdsc_clients=2, ncsa_clients=1, arrays=1)
        assert s.floor.active_remote_mounts == 3


class TestSdsc2005:
    def test_paper_capacity(self):
        s = build_sdsc2005(nsd_servers=8, ds4100_count=32, sdsc_clients=1,
                           anl_clients=1, ncsa_clients=1)
        raw = sum(a.raw_capacity for a in s.arrays)
        assert raw == pytest.approx(TB(536))  # 32 x 67 x 250 GB

    def test_all_luns_mapped(self):
        s = build_sdsc2005(nsd_servers=8, ds4100_count=4, sdsc_clients=1,
                           anl_clients=0, ncsa_clients=0)
        # 4 bricks x 7 luns = 28 NSDs
        assert len(s.fs.nsds) == 28

    def test_remote_sites_wired(self):
        s = build_sdsc2005(nsd_servers=4, ds4100_count=2, sdsc_clients=1,
                           anl_clients=2, ncsa_clients=2)
        mounts = s.mount_clients("anl", 1)
        assert mounts[0].fs is s.fs
        assert s.sdsc.active_remote_mounts == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            build_sdsc2005(nsd_servers=0)


class TestDeisa:
    def test_full_mesh_exports(self):
        s = build_deisa(servers_per_site=2, clients_per_site=1)
        assert len(s.filesystems) == 4
        for importer in s.clusters.values():
            # every site can mount the other three
            assert len(importer.remote_fs) == 3

    def test_unified_uid_space(self):
        s = build_deisa(servers_per_site=1, clients_per_site=1)
        uids = {
            site: cluster.uid_domain.lookup("plasma").uid
            for site, cluster in s.clusters.items()
        }
        assert len(set(uids.values())) == 1  # same uid everywhere (§7)

    def test_cross_site_mount(self):
        s = build_deisa(servers_per_site=2, clients_per_site=1)
        mount = s.mount("fzj", "cineca")
        assert mount.fs is s.filesystems["cineca"]

    def test_wan_is_1gbs(self):
        s = build_deisa(servers_per_site=1, clients_per_site=1)
        rate = s.gfs.network.bottleneck_rate("cineca-c0", "fzj-nsd0")
        assert rate <= Gbps(1)
