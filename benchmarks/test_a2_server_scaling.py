"""A2 benchmark — ablation: NSD server count vs aggregate rate."""

from repro.experiments.ablations import run_a2_server_scaling
from repro.util.units import MiB


def test_a2_server_scaling(run_experiment):
    result = run_experiment(
        run_a2_server_scaling, server_counts=(8, 16, 32), clients=24,
        region_bytes=MiB(48),
    )
    r8 = result.metric("rate_8srv")
    r16 = result.metric("rate_16srv")
    r32 = result.metric("rate_32srv")
    # server GbE aggregate binds at the low end: doubling servers helps a lot
    assert r16 > 1.5 * r8
    # until the fixed client population becomes the limit
    assert r32 > r16
    assert r32 < 4 * r8
