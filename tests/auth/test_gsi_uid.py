"""Tests for GSI certificates and UID domains."""

import numpy as np
import pytest

from repro.auth.gsi import CertificateAuthority, make_proxy, verify_proxy
from repro.auth.rsa import generate_keypair
from repro.auth.uid import GridMapFile, UidDomain


def kp(seed):
    return generate_keypair(bits=256, rng=np.random.default_rng(seed))


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("/C=US/O=TeraGrid/CN=CA", kp(0))


@pytest.fixture(scope="module")
def alice_key():
    return kp(1)


@pytest.fixture()
def alice_cert(ca, alice_key):
    return ca.issue("/C=US/O=TeraGrid/CN=alice", alice_key.public, not_before=0.0)


class TestCertificates:
    def test_issue_and_verify(self, ca, alice_cert):
        assert ca.verify(alice_cert, at_time=100.0)

    def test_expired_rejected(self, ca, alice_key):
        cert = ca.issue("/CN=shortlived", alice_key.public, not_before=0.0, lifetime=10.0)
        assert ca.verify(cert, at_time=5.0)
        assert not ca.verify(cert, at_time=11.0)

    def test_not_yet_valid_rejected(self, ca, alice_key):
        cert = ca.issue("/CN=future", alice_key.public, not_before=100.0)
        assert not ca.verify(cert, at_time=50.0)

    def test_wrong_issuer_rejected(self, alice_cert):
        other_ca = CertificateAuthority("/CN=EvilCA", kp(66))
        assert not other_ca.verify(alice_cert, at_time=1.0)

    def test_forged_signature_rejected(self, ca, alice_cert):
        from dataclasses import replace

        forged = replace(alice_cert, subject="/CN=mallory")
        assert not ca.verify(forged, at_time=1.0)

    def test_revocation(self, ca, alice_key):
        cert = ca.issue("/CN=revokee", alice_key.public)
        assert ca.verify(cert, at_time=1.0)
        ca.revoke("/CN=revokee")
        assert not ca.verify(cert, at_time=1.0)


class TestProxies:
    def test_proxy_chain_verifies(self, ca, alice_cert, alice_key):
        proxy_key = kp(7)
        proxy = make_proxy(alice_cert, alice_key, proxy_key.public, not_before=0.0)
        assert verify_proxy(proxy, ca, at_time=100.0)
        assert proxy.identity == "/C=US/O=TeraGrid/CN=alice"
        assert proxy.subject.endswith("/CN=proxy")

    def test_expired_proxy_rejected(self, ca, alice_cert, alice_key):
        proxy = make_proxy(
            alice_cert, alice_key, kp(7).public, not_before=0.0, lifetime=3600.0
        )
        assert not verify_proxy(proxy, ca, at_time=4000.0)

    def test_proxy_signed_by_wrong_user_rejected(self, ca, alice_cert):
        mallory_key = kp(13)
        proxy = make_proxy(alice_cert, mallory_key, kp(7).public, not_before=0.0)
        assert not verify_proxy(proxy, ca, at_time=1.0)

    def test_proxy_of_revoked_user_rejected(self, ca, alice_key):
        cert = ca.issue("/CN=soon-revoked", alice_key.public)
        proxy = make_proxy(cert, alice_key, kp(7).public, not_before=0.0)
        assert verify_proxy(proxy, ca, at_time=1.0)
        ca.revoke("/CN=soon-revoked")
        assert not verify_proxy(proxy, ca, at_time=1.0)


class TestUidDomain:
    def test_paper_scenario_different_uids_per_site(self):
        sdsc = UidDomain("sdsc")
        ncsa = UidDomain("ncsa")
        sdsc.add_user("alice", uid=5001)
        ncsa.add_user("amhb", uid=77)  # same human, different name & uid
        assert sdsc.lookup("alice").uid != ncsa.lookup("amhb").uid

    def test_duplicate_rejected(self):
        dom = UidDomain("sdsc")
        dom.add_user("alice", uid=1)
        with pytest.raises(ValueError):
            dom.add_user("alice", uid=2)
        with pytest.raises(ValueError):
            dom.add_user("bob", uid=1)

    def test_lookup_unknown(self):
        dom = UidDomain("sdsc")
        with pytest.raises(KeyError):
            dom.lookup("ghost")
        assert dom.lookup_uid(404) is None

    def test_contains(self):
        dom = UidDomain("sdsc")
        dom.add_user("alice", uid=1)
        assert "alice" in dom and "bob" not in dom


class TestGridMapFile:
    def make(self):
        dom = UidDomain("sdsc")
        dom.add_user("alice", uid=5001)
        gmf = GridMapFile(dom)
        gmf.add("/CN=alice", "alice")
        return dom, gmf

    def test_resolve(self):
        _, gmf = self.make()
        assert gmf.resolve("/CN=alice").uid == 5001

    def test_unmapped_dn(self):
        _, gmf = self.make()
        with pytest.raises(KeyError, match="grid-mapfile"):
            gmf.resolve("/CN=stranger")

    def test_mapping_to_missing_user_rejected(self):
        dom = UidDomain("sdsc")
        gmf = GridMapFile(dom)
        with pytest.raises(KeyError):
            gmf.add("/CN=alice", "nosuchuser")

    def test_reverse_lookup(self):
        _, gmf = self.make()
        assert gmf.dn_of_uid(5001) == "/CN=alice"
        assert gmf.dn_of_uid(9999) is None
