"""Tests for StagedJob / DirectGfsJob."""

import pytest

from repro.grid import (
    DirectGfsJob,
    GridFtp,
    GurScheduler,
    JobSpec,
    SiteResources,
    StagedJob,
)
from repro.util.units import GB, MB, MiB

from tests.core.testbed import mounted, run_io, small_gfs


def staging_bed():
    g, cluster, fs, clients = small_gfs(blocks_per_nsd=16384, block_size=MiB(1))
    # extra endpoints for GridFTP
    g.network.add_host("data-home", "sw", 1.25e9)
    g.network.add_host("compute", "sw", 1.25e9)
    scheduler = GurScheduler(g.sim)
    scheduler.add_site(SiteResources("big", compute_nodes=64, scratch_bytes=GB(100)))
    scheduler.add_site(SiteResources("tiny", compute_nodes=64, scratch_bytes=MB(1)))
    gridftp = GridFtp(g.sim, g.engine, g.messages)
    mount = mounted(g, cluster, node="c0")
    return g, scheduler, gridftp, mount, fs


def seed_dataset(g, mount, path, nbytes):
    def io():
        h = yield mount.open(path, "w", create=True)
        yield mount.write(h, b"\x00" * int(nbytes))
        yield mount.close(h)

    run_io(g, io())


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(dataset_bytes=-1, output_bytes=0, compute_seconds=0)
        with pytest.raises(ValueError):
            JobSpec(dataset_bytes=1, output_bytes=0, compute_seconds=-1)
        with pytest.raises(ValueError):
            JobSpec(dataset_bytes=1, output_bytes=0, compute_seconds=0,
                    access_fraction=1.5)


class TestStagedJob:
    def test_runs_and_accounts(self):
        g, sched, ftp, mount, fs = staging_bed()
        job = StagedJob(g.sim, sched, ftp, "data-home", "compute", "big")
        spec = JobSpec(dataset_bytes=MB(64), output_bytes=MB(8),
                       compute_seconds=10.0, nodes=4)
        rep = g.run(until=job.run(spec))
        assert rep.admitted
        assert rep.mode == "staged"
        assert rep.bytes_moved == MB(72)
        assert rep.total_time >= rep.stage_in_time + 10.0 + rep.stage_out_time - 1e-9
        assert rep.time_to_first_byte >= rep.stage_in_time

    def test_scratch_refusal_reported(self):
        g, sched, ftp, mount, fs = staging_bed()
        job = StagedJob(g.sim, sched, ftp, "data-home", "compute", "tiny")
        spec = JobSpec(dataset_bytes=MB(64), output_bytes=0, compute_seconds=1.0)
        rep = g.run(until=job.run(spec))
        assert not rep.admitted
        assert "scratch" in rep.refusal

    def test_resources_released_after_run(self):
        g, sched, ftp, mount, fs = staging_bed()
        job = StagedJob(g.sim, sched, ftp, "data-home", "compute", "big")
        spec = JobSpec(dataset_bytes=MB(8), output_bytes=0, compute_seconds=1.0)
        g.run(until=job.run(spec))
        assert sched.free_scratch("big") == GB(100)


class TestDirectGfsJob:
    def test_moves_only_accessed_fraction(self):
        g, sched, ftp, mount, fs = staging_bed()
        seed_dataset(g, mount, "/data", MB(64))
        mount.pool.invalidate(fs.namespace.resolve("/data").ino)
        job = DirectGfsJob(g.sim, sched, mount, "big", io_chunk=int(MB(4)))
        spec = JobSpec(dataset_bytes=MB(64), output_bytes=MB(4),
                       compute_seconds=5.0, nodes=4, access_fraction=0.25)
        rep = g.run(until=job.run(spec, "/data", "/out"))
        assert rep.admitted
        assert rep.bytes_moved == pytest.approx(MB(16) + MB(4))
        assert rep.time_to_first_byte < 1.0  # no stage-in wait

    def test_gfs_needs_no_scratch(self):
        g, sched, ftp, mount, fs = staging_bed()
        seed_dataset(g, mount, "/data", MB(16))
        job = DirectGfsJob(g.sim, sched, mount, "tiny")
        spec = JobSpec(dataset_bytes=MB(16), output_bytes=0, compute_seconds=1.0)
        rep = g.run(until=job.run(spec, "/data", "/out"))
        assert rep.admitted  # tiny scratch site still eligible

    def test_node_refusal(self):
        g, sched, ftp, mount, fs = staging_bed()
        seed_dataset(g, mount, "/data", MB(1))
        job = DirectGfsJob(g.sim, sched, mount, "big")
        spec = JobSpec(dataset_bytes=MB(1), output_bytes=0,
                       compute_seconds=0.0, nodes=100)
        rep = g.run(until=job.run(spec, "/data", "/out"))
        assert not rep.admitted
