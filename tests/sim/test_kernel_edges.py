"""Edge cases of the event kernel that the main tests don't reach."""

from repro.sim import Interrupt, Simulation, Store


class TestLateFailures:
    def test_anyof_defuses_late_child_failure(self):
        sim = Simulation()
        fast = sim.event()
        slow = sim.event()

        def proc(sim):
            result = yield sim.any_of([fast, slow])
            return list(result.values())

        p = sim.process(proc(sim))
        fast.succeed("winner")
        sim.run()
        # the loser fails AFTER the condition decided: must not crash the sim
        slow.fail(RuntimeError("late loser"))
        sim.run()
        assert p.value == ["winner"]

    def test_allof_defuses_second_failure(self):
        sim = Simulation()
        a, b = sim.event(), sim.event()

        def proc(sim):
            try:
                yield sim.all_of([a, b])
            except RuntimeError as exc:
                return str(exc)

        p = sim.process(proc(sim))
        a.fail(RuntimeError("first"))
        sim.run()
        b.fail(RuntimeError("second"))
        sim.run()
        assert p.value == "first"


class TestInterruptEdges:
    def test_interrupt_while_waiting_on_store(self):
        sim = Simulation()
        store = Store(sim)

        def consumer(sim):
            try:
                yield store.get()
            except Interrupt:
                return "freed"

        p = sim.process(consumer(sim))

        def killer(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer(sim))
        sim.run()
        assert p.value == "freed"

    def test_interrupt_racing_completion_is_safe(self):
        sim = Simulation()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(worker(sim))

        def racer(sim):
            yield sim.timeout(1.0)  # same instant the worker finishes
            if p.is_alive:
                p.interrupt()

        sim.process(racer(sim))
        sim.run()
        assert p.value == "done"


class TestRunSemantics:
    def test_run_until_already_processed_event(self):
        sim = Simulation()
        evt = sim.event()
        evt.succeed(7)
        sim.run()
        assert sim.run(until=evt) == 7  # immediate, no deadlock

    def test_run_until_time_advances_clock_exactly(self):
        sim = Simulation()
        sim.timeout(10.0)
        sim.run(until=3.25)
        assert sim.now == 3.25

    def test_schedule_callback_ordering(self):
        sim = Simulation()
        order = []
        sim.schedule_callback(1.0, lambda: order.append("a"))
        sim.schedule_callback(1.0, lambda: order.append("b"))
        sim.schedule_callback(0.5, lambda: order.append("c"))
        sim.run()
        assert order == ["c", "a", "b"]
