#!/usr/bin/env python
"""Enzo on the TeraGrid: the paper's SC'04 mode of operation.

"the output of a very large dataset to a central GFS repository, followed
by its examination and visualization at several sites, some of which may
not have the resources to ingest the dataset whole" (§4).

The script drives the SC'04 scenario end-to-end:

1. Enzo runs on DataStar at SDSC, writing checkpoint dumps *directly* to
   the StorCloud filesystem on the Pittsburgh show floor over the WAN;
2. visualization nodes at NCSA stream the dumps back concurrently;
3. the SCinet-style per-lane monitors report what each 10 GbE carried.

Run:  python examples/enzo_teragrid.py          (a few minutes of sim work)
"""

from repro.topology.sc04 import build_sc04
from repro.util.units import GB, MiB, fmt_bits_rate, fmt_rate, fmt_time
from repro.workloads.enzo import EnzoRun
from repro.workloads.viz import VizReader


def main():
    scenario = build_sc04(
        nsd_servers=24,
        sdsc_clients=8,
        ncsa_clients=8,
        with_disks=False,
        store_data=False,
    )
    g = scenario.gfs
    print(f"floor filesystem: {scenario.fs.capacity / 1e12:.1f} TB over "
          f"{len(scenario.fs.nsds)} NSDs, 3 SCinet lanes")

    # --- Enzo writes from SDSC -------------------------------------------------
    enzo = EnzoRun(
        scenario.sdsc_mounts,
        "/enzo-run42",
        steps=2,
        bytes_per_dump=GB(4),
        compute_seconds=30.0,
    )
    t0 = g.sim.now
    result = g.run(until=enzo.run())
    print(
        f"Enzo: {result.extra['dumps']:.0f} dumps, "
        f"{result.bytes_written / 1e9:.0f} GB written to the floor in "
        f"{fmt_time(result.elapsed)} "
        f"({fmt_rate(result.bytes_written / result.elapsed)} incl. compute)"
    )

    # --- visualization at NCSA ---------------------------------------------------
    files = sorted(
        f"/enzo-run42/{name}"
        for name in scenario.fs.namespace.listdir("/enzo-run42")
        if name.startswith("dump0001")
    )
    readers = [
        VizReader(mount, files[i % len(files)], chunk=MiB(2)).run()
        for i, mount in enumerate(scenario.ncsa_mounts)
    ]
    t0 = g.sim.now
    g.run(until=g.sim.all_of(readers))
    viz_bytes = sum(p.value.bytes_read for p in readers)
    print(
        f"NCSA visualization: {viz_bytes / 1e9:.1f} GB streamed in "
        f"{fmt_time(g.sim.now - t0)} ({fmt_rate(viz_bytes / (g.sim.now - t0))})"
    )

    # --- the SCinet lane monitors ---------------------------------------------------
    for tag in scenario.lane_tags():
        series = g.engine.tag_rate_series(tag)
        if series.empty:
            continue
        busy = [v for v in series.values if v > 0]
        mean = sum(busy) / len(busy) if busy else 0.0
        print(f"  {tag}: mean {fmt_bits_rate(mean)}, peak {fmt_bits_rate(series.max())}")


if __name__ == "__main__":
    main()
