"""Tests for Controller, StorageArray/Lun, and SAN fabric."""

import pytest

from repro.sim import Simulation
from repro.storage import (
    Controller,
    DS4100_CONTROLLER,
    Hba,
    SanFabric,
    make_ds4100,
    make_fastt600,
)
from repro.storage.controller import ControllerSpec
from repro.storage.san import FC2_RATE
from repro.util.units import MB, TB


class TestController:
    def test_read_rate(self):
        sim = Simulation()
        ctrl = Controller(sim, DS4100_CONTROLLER)
        evt = ctrl.transfer("read", MB(200))
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 + DS4100_CONTROLLER.per_io_latency)

    def test_write_slower(self):
        sim = Simulation()
        ctrl = Controller(sim, DS4100_CONTROLLER)
        evt = ctrl.transfer("write", DS4100_CONTROLLER.write_rate)
        sim.run(until=evt)
        assert sim.now == pytest.approx(1.0 + DS4100_CONTROLLER.per_io_latency)
        assert DS4100_CONTROLLER.write_rate < DS4100_CONTROLLER.read_rate / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerSpec("x", read_rate=0, write_rate=1)
        ctrl = Controller(Simulation(), DS4100_CONTROLLER)
        with pytest.raises(ValueError):
            ctrl.transfer("bogus", 1)
        with pytest.raises(ValueError):
            ctrl.transfer("read", -1)

    def test_accounting(self):
        sim = Simulation()
        ctrl = Controller(sim, DS4100_CONTROLLER)
        sim.run(until=ctrl.transfer("read", MB(1)))
        sim.run(until=ctrl.transfer("write", MB(2)))
        assert ctrl.bytes_read == MB(1)
        assert ctrl.bytes_written == MB(2)


class TestDs4100:
    def test_paper_fig9_geometry(self):
        array = make_ds4100(Simulation(), "b0")
        assert array.drive_count == 67
        assert len(array.luns) == 7
        assert len(array.controllers) == 2
        assert array.raw_capacity == pytest.approx(67 * 250e9)

    def test_paper_total_raw_capacity(self):
        # "32 x 67 x 250 GB = 536 TB" (§5)
        sim = Simulation()
        arrays = [make_ds4100(sim, f"b{i}") for i in range(32)]
        assert sum(a.raw_capacity for a in arrays) == pytest.approx(TB(536))

    def test_luns_alternate_controllers(self):
        array = make_ds4100(Simulation(), "b0")
        owners = [lun.controller for lun in array.luns]
        assert owners[0] is array.controllers[0]
        assert owners[1] is array.controllers[1]
        assert owners[2] is array.controllers[0]

    def test_lun_io_passes_both_stages(self):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        lun = array.luns[0]
        evt = lun.io("read", MB(200))
        sim.run(until=evt)
        # controller: 1s (+latency); raid read at 480 MB/s: ~0.42s; serial
        expected = (
            MB(200) / DS4100_CONTROLLER.read_rate
            + DS4100_CONTROLLER.per_io_latency
            + MB(200) / lun.raid.read_rate()
        )
        assert sim.now == pytest.approx(expected)

    def test_fastt600(self):
        array = make_fastt600(Simulation(), "sc04")
        assert len(array.luns) == 8
        assert array.usable_capacity > 0


class TestSanFabric:
    def make(self):
        sim = Simulation()
        array = make_ds4100(sim, "b0")
        fabric = SanFabric(sim)
        hba = Hba(sim)
        fabric.attach_server("nsd0", hba)
        fabric.zone("nsd0", array.luns[0])
        return sim, fabric, array

    def test_io_through_fabric(self):
        sim, fabric, array = self.make()
        evt = fabric.io("nsd0", array.luns[0], "read", MB(100))
        sim.run(until=evt)
        assert sim.now > 0

    def test_hba_rate_binds(self):
        # HBA at 200 MB/s is the first stage; two concurrent IOs serialize
        # through it.
        sim, fabric, array = self.make()
        e1 = fabric.io("nsd0", array.luns[0], "read", MB(200))
        e2 = fabric.io("nsd0", array.luns[0], "read", MB(200))
        sim.run(until=e2)
        assert sim.now >= 2 * MB(200) / FC2_RATE

    def test_unzoned_lun_rejected(self):
        sim, fabric, array = self.make()
        with pytest.raises(PermissionError):
            fabric.io("nsd0", array.luns[1], "read", MB(1))

    def test_unknown_server_rejected(self):
        sim, fabric, array = self.make()
        with pytest.raises(KeyError):
            fabric.io("ghost", array.luns[0], "read", MB(1))
        with pytest.raises(KeyError):
            fabric.zone("ghost", array.luns[0])

    def test_duplicate_attach_rejected(self):
        sim, fabric, _ = self.make()
        with pytest.raises(ValueError):
            fabric.attach_server("nsd0", Hba(sim))

    def test_multi_port_hba(self):
        sim = Simulation()
        hba = Hba(sim, ports=3)
        assert hba.rate == pytest.approx(3 * FC2_RATE)
        with pytest.raises(ValueError):
            Hba(sim, ports=0)
