"""GSI-style identities: CAs, user certificates, proxy certificates.

The paper's §6 motivation: a TeraGrid user has *different* UIDs at SDSC,
NCSA, ANL — but one GSI certificate. SDSC's extension lets GFS ownership
follow the certificate's Distinguished Name rather than any site-local UID.

The chain model is the standard one: a :class:`CertificateAuthority` signs
user :class:`Certificate`\\ s; users derive short-lived
:class:`ProxyCertificate`\\ s signed by their own key (as ``grid-proxy-init``
does); verification walks proxy → user cert → trusted CA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.auth.rsa import RsaKeyPair, RsaPublicKey


@dataclass(frozen=True)
class Certificate:
    """An identity certificate."""

    subject: str  # distinguished name, e.g. "/C=US/O=TeraGrid/CN=alice"
    issuer: str
    public_key: RsaPublicKey
    not_before: float
    not_after: float
    signature: int  # issuer's signature over tbs_bytes()

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding."""
        return (
            f"{self.subject}|{self.issuer}|{self.public_key.n:x}|"
            f"{self.public_key.e:x}|{self.not_before}|{self.not_after}"
        ).encode()

    def valid_at(self, t: float) -> bool:
        return self.not_before <= t <= self.not_after


@dataclass(frozen=True)
class ProxyCertificate:
    """A short-lived proxy derived from a user certificate."""

    certificate: Certificate  # the proxy cert itself (issuer == user DN)
    issuer_cert: Certificate  # the user's long-lived certificate

    @property
    def subject(self) -> str:
        return self.certificate.subject

    @property
    def identity(self) -> str:
        """The effective identity: the user DN, not the proxy DN."""
        return self.issuer_cert.subject


class CertificateAuthority:
    """A CA that issues user certificates."""

    def __init__(self, name: str, keypair: RsaKeyPair) -> None:
        self.name = name
        self.keypair = keypair
        self.issued: list[str] = []
        self._revoked: set[str] = set()

    @property
    def public_key(self) -> RsaPublicKey:
        return self.keypair.public

    def issue(
        self,
        subject: str,
        subject_key: RsaPublicKey,
        not_before: float = 0.0,
        lifetime: float = 365 * 86400.0,
    ) -> Certificate:
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=subject_key,
            not_before=not_before,
            not_after=not_before + lifetime,
            signature=0,
        )
        signed = Certificate(
            **{**cert.__dict__, "signature": self.keypair.sign(cert.tbs_bytes())}
        )
        self.issued.append(subject)
        return signed

    def revoke(self, subject: str) -> None:
        self._revoked.add(subject)

    def is_revoked(self, subject: str) -> bool:
        return subject in self._revoked

    def verify(self, cert: Certificate, at_time: float) -> bool:
        """Verify a certificate this CA issued."""
        if cert.issuer != self.name:
            return False
        if self.is_revoked(cert.subject):
            return False
        if not cert.valid_at(at_time):
            return False
        unsigned = Certificate(**{**cert.__dict__, "signature": 0})
        return self.public_key.verify(unsigned.tbs_bytes(), cert.signature)


def make_proxy(
    user_cert: Certificate,
    user_key: RsaKeyPair,
    proxy_key: RsaPublicKey,
    not_before: float,
    lifetime: float = 12 * 3600.0,
) -> ProxyCertificate:
    """Derive a proxy certificate signed by the *user's* key."""
    tbs = Certificate(
        subject=user_cert.subject + "/CN=proxy",
        issuer=user_cert.subject,
        public_key=proxy_key,
        not_before=not_before,
        not_after=not_before + lifetime,
        signature=0,
    )
    signed = Certificate(
        **{**tbs.__dict__, "signature": user_key.sign(tbs.tbs_bytes())}
    )
    return ProxyCertificate(certificate=signed, issuer_cert=user_cert)


def verify_proxy(
    proxy: ProxyCertificate, ca: CertificateAuthority, at_time: float
) -> bool:
    """Walk proxy → user certificate → CA."""
    cert = proxy.certificate
    if cert.issuer != proxy.issuer_cert.subject:
        return False
    if not cert.valid_at(at_time):
        return False
    unsigned = Certificate(**{**cert.__dict__, "signature": 0})
    if not proxy.issuer_cert.public_key.verify(unsigned.tbs_bytes(), cert.signature):
        return False
    return ca.verify(proxy.issuer_cert, at_time)
