"""Fuzzer tests: schedule legality, determinism, oracle sensitivity."""

import random
from types import SimpleNamespace

from repro.core.tokens import RW, HeldToken
from repro.faults.fuzz import (
    InvariantOracle,
    random_schedule,
    run_fuzz,
    run_fuzz_case,
)
from repro.sim import Simulation

SERVERS = [f"nsd{i}" for i in range(5)]
LINKS = [f"{n}<->sw" for n in SERVERS[1:]]
NSDS = [f"fuzz-nsd{i}" for i in range(5)]
MANAGER = SERVERS[0]


def _generate(seed, t0=2.0, duration=8.0):
    return random_schedule(
        random.Random(seed),
        server_nodes=SERVERS,
        manager_node=MANAGER,
        t0=t0,
        duration=duration,
        links=LINKS,
        nsds=NSDS,
    )


def _paired_windows(actions, start_kinds, end_kind):
    """Pair start/end actions by target into (start, end) windows."""
    open_at = {}
    windows = []
    for a in actions:
        if a.kind in start_kinds:
            assert a.target not in open_at, f"{a.target} already open"
            open_at[a.target] = a.at
        elif a.kind == end_kind and a.target in open_at:
            windows.append((open_at.pop(a.target), a.at))
    assert not open_at, f"unclosed windows: {open_at}"
    return windows


def _assert_disjoint(windows):
    for i, (s1, e1) in enumerate(windows):
        for s2, e2 in windows[i + 1:]:
            assert e1 <= s2 or e2 <= s1, (windows[i], (s2, e2))


class TestRandomScheduleLegality:
    def test_many_seeds_respect_constraints(self):
        t0, duration = 2.0, 8.0
        hi = t0 + 0.85 * duration
        for seed in range(60):
            schedule = _generate(seed, t0, duration)
            acts = schedule.ordered()
            assert all(t0 <= a.at <= t0 + duration for a in acts)

            # The manager dies only via crash_manager, at most once.
            assert not any(
                a.kind == "node_crash" and a.target == MANAGER for a in acts
            )
            assert sum(1 for a in acts if a.kind == "crash_manager") <= 1

            # Every crash is restored before the storm's tail, and no two
            # crash windows (manager included) ever overlap.
            crash_windows = _paired_windows(
                acts, ("node_crash", "crash_manager"), "node_restart"
            )
            assert all(end <= hi + 1e-9 for _, end in crash_windows)
            _assert_disjoint(crash_windows)

            # One partition at a time; strict minorities; never the manager.
            partitions = _paired_windows(acts, ("partition",), "partition_heal")
            _assert_disjoint(partitions)
            for a in acts:
                if a.kind != "partition":
                    continue
                minority = a.target.split(",")
                assert MANAGER not in minority
                assert len(minority) <= (len(SERVERS) - 1) // 2

            # Loss bursts never overlap (one saved TCP model).
            _assert_disjoint(
                _paired_windows(acts, ("loss_burst",), "loss_clear")
            )

            # Each link is flapped or browned out at most once.
            touched = [
                a.target
                for a in acts
                if a.kind in ("link_down", "link_brownout")
            ]
            assert len(touched) == len(set(touched))
            assert set(touched) <= set(LINKS)

            # Corruption only lands on NSDs known to hold written blocks.
            assert {
                a.target for a in acts if a.kind == "corrupt_block"
            } <= set(NSDS)

    def test_fault_mix_has_coverage_across_seeds(self):
        kinds = set()
        for seed in range(60):
            kinds |= {a.kind for a in _generate(seed)}
        assert {
            "node_crash", "crash_manager", "partition",
            "loss_burst", "corrupt_block",
        } <= kinds


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert _generate(7).to_dicts() == _generate(7).to_dicts()

    def test_different_seeds_differ(self):
        dicts = {repr(_generate(seed).to_dicts()) for seed in range(10)}
        assert len(dicts) > 1

    def test_same_seed_same_storm(self):
        kw = dict(duration=2.5, servers=4, clients=2, settle=3.0)
        a = run_fuzz_case(11, **kw)
        b = run_fuzz_case(11, **kw)
        assert a.to_dict() == b.to_dict()  # bit-identical, not approx


class TestFuzzSmoke:
    def test_short_storms_pass(self):
        reports = run_fuzz(
            seeds=(0, 1), duration=2.5, servers=4, clients=2, settle=3.0
        )
        assert all(r.passed for r in reports), [r.violations for r in reports]
        assert all(r.ops > 0 and r.reads_ok > 0 for r in reports)
        assert all(r.conflict_sweeps > 0 for r in reports)


class TestOracleSensitivity:
    """A fuzzer is only as good as its oracles: each must actually fire."""

    def _oracle(self, **kw):
        sim = Simulation()
        fs = SimpleNamespace(token_manager=SimpleNamespace(_held={}))
        health = SimpleNamespace(down_intervals=lambda node: [])
        return InvariantOracle(sim, fs, health, **kw)

    def test_planted_conflict_is_flagged(self):
        oracle = self._oracle()
        oracle.fs.token_manager._held[1] = [
            HeldToken("c0", RW, 0, 100),
            HeldToken("c1", RW, 50, 150),
        ]
        oracle.check_token_conflicts()
        assert [v.kind for v in oracle.violations] == ["conflicting_tokens"]

    def test_clean_table_is_silent(self):
        oracle = self._oracle()
        oracle.fs.token_manager._held[1] = [
            HeldToken("c0", RW, 0, 100),
            HeldToken("c1", RW, 100, 200),
        ]
        oracle.check_token_conflicts()
        assert oracle.violations == []

    def test_checksum_error_needs_injected_rot(self):
        surprised = self._oracle(corruption_expected=False)
        surprised.record_checksum_error("nsd1: blk 7")
        assert [v.kind for v in surprised.violations] == [
            "unexpected_checksum_error"
        ]
        expecting = self._oracle(corruption_expected=True)
        expecting.record_checksum_error("nsd1: blk 7")
        assert expecting.violations == []

    def test_unbacked_declaration_is_flagged(self):
        oracle = self._oracle()
        oracle.detector = SimpleNamespace(
            lease_duration=1.0, check_interval=0.1,
            detections=[("nsd2", 5.0)],
        )
        oracle.check_detections()
        assert [v.kind for v in oracle.violations] == ["bogus_declaration"]

    def test_crash_backed_declaration_is_accepted(self):
        oracle = self._oracle()
        oracle.detector = SimpleNamespace(
            lease_duration=1.0, check_interval=0.1,
            detections=[("nsd2", 5.0)],
        )
        oracle.health = SimpleNamespace(
            down_intervals=lambda node: [(4.2, 6.0)]
        )
        oracle.check_detections()
        assert oracle.violations == []

    def test_link_down_backed_declaration_is_accepted(self):
        # A downed access link means renewals physically could not flow:
        # the resulting lease expiry is a valid declaration.
        oracle = self._oracle(link_downs={"nsd2": [(4.0, 4.6)]})
        oracle.detector = SimpleNamespace(
            lease_duration=1.0, check_interval=0.1,
            detections=[("nsd2", 5.0)],
        )
        oracle.check_detections()
        assert oracle.violations == []

    def test_partition_backed_declaration_is_accepted(self):
        oracle = self._oracle()
        oracle.detector = SimpleNamespace(
            lease_duration=1.0, check_interval=0.1,
            detections=[("nsd2", 5.0)],
        )
        oracle.partition = SimpleNamespace(
            history=[(4.0, 5.5, {"nsd2"})], active=False,
        )
        oracle.check_detections()
        assert oracle.violations == []
