"""Tests for stripe geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockRange, StripeGeometry


class TestBlockRange:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockRange(-1, 0, 1)
        with pytest.raises(ValueError):
            BlockRange(0, -1, 1)
        with pytest.raises(ValueError):
            BlockRange(0, 0, 0)


class TestSplit:
    def setup_method(self):
        self.geo = StripeGeometry(block_size=1024, num_nsds=4)

    def test_within_one_block(self):
        pieces = self.geo.split(100, 200)
        assert pieces == [BlockRange(0, 100, 200)]

    def test_exact_block(self):
        pieces = self.geo.split(1024, 1024)
        assert pieces == [BlockRange(1, 0, 1024)]

    def test_spanning(self):
        pieces = self.geo.split(1000, 100)
        assert pieces == [BlockRange(0, 1000, 24), BlockRange(1, 0, 76)]

    def test_multi_block(self):
        pieces = self.geo.split(0, 3 * 1024 + 10)
        assert [p.block_index for p in pieces] == [0, 1, 2, 3]
        assert pieces[-1].length == 10

    def test_zero_length(self):
        assert self.geo.split(50, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            self.geo.split(-1, 10)
        with pytest.raises(ValueError):
            self.geo.block_of(-1)

    def test_span_bytes_roundtrip(self):
        for piece in self.geo.split(777, 5000):
            start, end = self.geo.span_bytes(piece)
            assert end - start == piece.length
            assert self.geo.block_of(start) == piece.block_index

    def test_blocks_in(self):
        assert list(self.geo.blocks_in(1000, 100)) == [0, 1]


class TestPlacement:
    def test_round_robin(self):
        geo = StripeGeometry(1024, 4)
        assert [geo.nsd_for(0, b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_per_file_rotation(self):
        geo = StripeGeometry(1024, 4)
        assert geo.nsd_for(1, 0) == 1  # different files start on different NSDs

    def test_validation(self):
        with pytest.raises(ValueError):
            StripeGeometry(0, 4)
        with pytest.raises(ValueError):
            StripeGeometry(1024, 0)
        with pytest.raises(ValueError):
            StripeGeometry(1024, 4).nsd_for(0, -1)


@settings(max_examples=200, deadline=None)
@given(
    block_size=st.integers(1, 1 << 22),
    offset=st.integers(0, 1 << 40),
    length=st.integers(1, 1 << 24),
)
def test_split_reassembles_exactly(block_size, offset, length):
    """Pieces tile [offset, offset+length) contiguously without overlap."""
    geo = StripeGeometry(block_size, 7)
    pieces = geo.split(offset, length)
    assert sum(p.length for p in pieces) == length
    pos = offset
    for p in pieces:
        start, end = geo.span_bytes(p)
        assert start == pos
        assert 0 < p.length <= block_size
        assert p.offset + p.length <= block_size
        pos = end
    assert pos == offset + length


@settings(max_examples=100, deadline=None)
@given(
    block_size=st.integers(1, 4096),
    num_nsds=st.integers(1, 64),
    ino=st.integers(0, 1000),
)
def test_striping_balanced(block_size, num_nsds, ino):
    """Any num_nsds consecutive blocks land on num_nsds distinct NSDs."""
    geo = StripeGeometry(block_size, num_nsds)
    targets = [geo.nsd_for(ino, b) for b in range(num_nsds)]
    assert sorted(targets) == list(range(num_nsds))
