"""E11 benchmark — BG/L "Intimidata" on the production GFS (§5/§8)."""

from repro.experiments.e11_bgl import run_e11_bgl
from repro.util.units import MB


def test_e11_bgl(run_experiment):
    result = run_experiment(run_e11_bgl, io_nodes=32, per_io_node_bytes=MB(192))
    # checkpoint writes are storage-bound: the NIC upgrade barely moves them
    w1, w2 = result.metric("drain_rate_1gbe"), result.metric("drain_rate_2gbe")
    assert w2 < 1.2 * w1
    # restart reads benefit from more server NIC aggregate
    assert result.metric("read_rate_2gbe") > result.metric("read_rate_1gbe")
    # reads always beat writes on this filesystem (the Fig 11 asymmetry)
    assert result.metric("read_rate_1gbe") > 1.3 * w1
