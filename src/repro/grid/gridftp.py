"""GridFTP: wholesale file movement with parallel TCP streams.

The baseline the paper's Global File System replaces. Faithful to the
protocol's performance shape:

* a control-channel setup cost (GSI authentication: several WAN round
  trips) paid per transfer,
* ``streams`` parallel TCP data connections, each window/loss-capped, so
  aggregate WAN throughput scales with stream count until the pipe or the
  disks saturate,
* optional source/sink disk stages (a transfer is never faster than the
  spindles behind it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.net.flow import FlowEngine
from repro.net.message import MessageService
from repro.net.tcp import TcpModel
from repro.sim.kernel import Event, Simulation
from repro.storage.pipes import Pipe

#: Control-channel round trips for GSI auth + channel setup.
SETUP_ROUND_TRIPS = 4


@dataclass
class GridFtpResult:
    nbytes: float
    elapsed: float
    setup_time: float
    streams: int

    @property
    def rate(self) -> float:
        """Payload bytes/s including setup cost."""
        return self.nbytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def transfer_rate(self) -> float:
        """Bytes/s excluding the control-channel setup."""
        data_time = self.elapsed - self.setup_time
        return self.nbytes / data_time if data_time > 0 else 0.0


class GridFtp:
    """A GridFTP service between two endpoints."""

    def __init__(
        self,
        sim: Simulation,
        engine: FlowEngine,
        messages: MessageService,
        src_disk: Optional[Pipe] = None,
        dst_disk: Optional[Pipe] = None,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.messages = messages
        self.src_disk = src_disk
        self.dst_disk = dst_disk
        self.transfers = 0

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        streams: int = 4,
        tcp: Optional[TcpModel] = None,
        tags: tuple = ("gridftp",),
    ) -> Event:
        """Move ``nbytes`` src → dst; event value is a :class:`GridFtpResult`."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if streams < 1:
            raise ValueError("streams must be >= 1")
        return self.sim.process(
            self._transfer(src, dst, nbytes, streams, tcp, tags), name="gridftp"
        )

    def striped_transfer(
        self,
        src_nodes: list,
        dst_nodes: list,
        nbytes: float,
        streams_per_pair: int = 2,
        tcp: Optional[TcpModel] = None,
        tags: tuple = ("gridftp", "striped"),
    ) -> Event:
        """Striped (multi-node) GridFTP, the TeraGrid's answer to host
        limits: the dataset is divided across N source data movers sending
        to M destination movers, each pair running parallel streams.

        Setup costs one control exchange per pair; event value is a
        :class:`GridFtpResult`.
        """
        if not src_nodes or not dst_nodes:
            raise ValueError("need at least one node on each side")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if streams_per_pair < 1:
            raise ValueError("streams_per_pair must be >= 1")
        return self.sim.process(
            self._striped(src_nodes, dst_nodes, nbytes, streams_per_pair, tcp, tags),
            name="gridftp-striped",
        )

    def _striped(self, src_nodes, dst_nodes, nbytes, streams_per_pair, tcp, tags):
        t0 = self.sim.now
        pairs = [
            (src_nodes[i % len(src_nodes)], dst_nodes[i % len(dst_nodes)])
            for i in range(max(len(src_nodes), len(dst_nodes)))
        ]
        # control channel: one negotiation round trip per pair plus the
        # GSI handshake with the head nodes
        setups = [
            self.messages.round_trip(src, dst, request_bytes=1024, reply_bytes=1024)
            for src, dst in pairs
        ]
        for _ in range(SETUP_ROUND_TRIPS - 1):
            setups.append(
                self.messages.round_trip(pairs[0][0], pairs[0][1],
                                         request_bytes=1024, reply_bytes=1024)
            )
        yield self.sim.all_of(setups)
        setup = self.sim.now - t0
        if nbytes > 0:
            per_flow = nbytes / (len(pairs) * streams_per_pair)
            flows = []
            for src, dst in pairs:
                for _ in range(streams_per_pair):
                    flows.append(
                        self.engine.transfer(src, dst, per_flow, tcp=tcp, tags=tags)
                    )
            yield self.sim.all_of(flows)
        else:
            yield self.sim.timeout(0.0)
        self.transfers += 1
        return GridFtpResult(
            nbytes=nbytes,
            elapsed=self.sim.now - t0,
            setup_time=setup,
            streams=len(pairs) * streams_per_pair,
        )

    def _transfer(self, src, dst, nbytes, streams, tcp, tags) -> Generator[Event, None, None]:
        t0 = self.sim.now
        # Control channel: GSI handshake + channel negotiation.
        for _ in range(SETUP_ROUND_TRIPS):
            yield self.messages.round_trip(src, dst, request_bytes=1024, reply_bytes=1024)
        setup = self.sim.now - t0
        if nbytes > 0:
            per_stream = nbytes / streams
            flows = []
            for i in range(streams):
                flows.append(
                    self.engine.transfer(src, dst, per_stream, tcp=tcp, tags=tags)
                )
            # Disk stages overlap the network in a pipelined transfer; the
            # slower of (network, disks) dominates, so run them concurrently.
            stages = [self.sim.all_of(flows)]
            if self.src_disk is not None:
                stages.append(self.src_disk.transfer(nbytes))
            if self.dst_disk is not None:
                stages.append(self.dst_disk.transfer(nbytes))
            yield self.sim.all_of(stages)
        else:
            yield self.sim.timeout(0.0)
        self.transfers += 1
        return GridFtpResult(
            nbytes=nbytes,
            elapsed=self.sim.now - t0,
            setup_time=setup,
            streams=streams,
        )
