"""Storage substrate: disks, RAID sets, controllers, arrays, SAN fabric.

Models the hardware behind the paper's NSD servers:

* SC'02 — Sun F15K + 30 TB FC disk (QFS/SAM),
* SC'04 — IBM FastT600 StorCloud bricks (160 TB, 15 GB/s on the floor),
* 2005 production — 32 × IBM DS4100: 67 × 250 GB SATA drives each,
  seven 8+P RAID-5 sets per brick, dual 2 Gb/s FC controllers
  (200 MB/s each, paper Figs 1 & 9).

Throughput emerges from a pipeline of rate-limited stages (HBA → fabric →
controller → RAID/disks); per-IO latency adds along the chain while
steady-state throughput is set by the slowest stage — matching how the
paper's balanced-configuration arithmetic is done in §5.
"""

from repro.storage.pipes import Pipe
from repro.storage.disk import Disk, DiskSpec, FC_2005, SATA_2005
from repro.storage.raid import RaidSet
from repro.storage.controller import Controller, DS4100_CONTROLLER
from repro.storage.array import Lun, StorageArray, make_ds4100, make_fastt600
from repro.storage.san import Hba, SanFabric

__all__ = [
    "Pipe",
    "Disk",
    "DiskSpec",
    "FC_2005",
    "SATA_2005",
    "RaidSet",
    "Controller",
    "DS4100_CONTROLLER",
    "Lun",
    "StorageArray",
    "make_ds4100",
    "make_fastt600",
    "Hba",
    "SanFabric",
]
