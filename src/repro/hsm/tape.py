"""Tape cartridges, drives, and the robotic library.

2005-era numbers (the paper's machine room ran STK silos with "6 PB,
30 MB/s per drive" per Fig 1): a mount costs robot movement plus load and
thread time, a seek to a file costs tens of seconds, and streaming then
runs at the drive's native rate. These latencies are what make HSM recall
behaviour qualitatively different from disk and worth simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.sim.kernel import Event, Simulation
from repro.sim.resources import Resource
from repro.util.units import GB, MB


@dataclass(frozen=True)
class TapeSpec:
    name: str
    capacity: float
    rate: float  # streaming bytes/s
    load_time: float  # robot fetch + load + thread
    seek_time: float  # average position-to-file time

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.rate <= 0:
            raise ValueError("capacity and rate must be positive")
        if self.load_time < 0 or self.seek_time < 0:
            raise ValueError("times must be non-negative")


#: LTO-2 class drive, as deployed at SDSC in the paper's era.
LTO2 = TapeSpec(
    name="lto2",
    capacity=GB(200),
    rate=MB(30),
    load_time=75.0,
    seek_time=45.0,
)


@dataclass
class TapeCartridge:
    """One cartridge: a label and the archived segments it carries."""

    label: str
    spec: TapeSpec
    used: float = 0.0
    #: segment token → (offset, length); contents live in the HSM catalog
    segments: Dict[str, tuple] = field(default_factory=dict)

    @property
    def free(self) -> float:
        return self.spec.capacity - self.used

    def append(self, token: str, length: float) -> None:
        if length > self.free:
            raise ValueError(f"cartridge {self.label} full")
        if token in self.segments:
            raise ValueError(f"duplicate segment token {token!r}")
        self.segments[token] = (self.used, length)
        self.used += length

    def has(self, token: str) -> bool:
        return token in self.segments


class TapeDrive:
    """One drive: serves one mounted cartridge at a time."""

    def __init__(self, sim: Simulation, spec: TapeSpec, name: str = "drive") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self.mounted: Optional[TapeCartridge] = None
        self._res = Resource(sim, capacity=1, name=name)
        self.bytes_io = 0.0
        self.mounts = 0

    def io(self, cartridge: TapeCartridge, nbytes: float, kind: str) -> Event:
        """Mount (if needed), seek, stream ``nbytes``."""
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be read or write, got {kind!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.sim.process(self._io(cartridge, nbytes), name=f"{self.name}-io")

    def _io(self, cartridge: TapeCartridge, nbytes: float) -> Generator[Event, None, None]:
        with self._res.request() as req:
            yield req
            if self.mounted is not cartridge:
                # unload previous + robot + load
                yield self.sim.timeout(self.spec.load_time)
                self.mounted = cartridge
                self.mounts += 1
            yield self.sim.timeout(self.spec.seek_time + nbytes / self.spec.rate)
            self.bytes_io += nbytes


class TapeLibrary:
    """A silo: drives, cartridges, and an append-allocation policy."""

    def __init__(
        self,
        sim: Simulation,
        spec: TapeSpec = LTO2,
        drives: int = 2,
        cartridges: int = 100,
        name: str = "silo",
    ) -> None:
        if drives < 1 or cartridges < 1:
            raise ValueError("need at least one drive and one cartridge")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.drives = [TapeDrive(sim, spec, name=f"{name}.dr{i}") for i in range(drives)]
        self.cartridges: List[TapeCartridge] = [
            TapeCartridge(label=f"{name}.t{i:05d}", spec=spec) for i in range(cartridges)
        ]
        self._next_drive = 0
        self._catalog: Dict[str, TapeCartridge] = {}
        self._payloads: Dict[str, Optional[bytes]] = {}

    @property
    def capacity(self) -> float:
        return len(self.cartridges) * self.spec.capacity

    @property
    def used(self) -> float:
        return sum(c.used for c in self.cartridges)

    def _pick_drive(self, cartridge: TapeCartridge) -> TapeDrive:
        # Prefer a drive that already has the cartridge mounted.
        for drive in self.drives:
            if drive.mounted is cartridge:
                return drive
        drive = self.drives[self._next_drive % len(self.drives)]
        self._next_drive += 1
        return drive

    def archive(self, token: str, length: float, payload: Optional[bytes] = None) -> Event:
        """Write a segment to tape; fires when on media."""
        if token in self._catalog:
            raise ValueError(f"segment {token!r} already archived")
        cartridge = next((c for c in self.cartridges if c.free >= length), None)
        if cartridge is None:
            raise ValueError(f"library {self.name} out of tape")
        cartridge.append(token, length)
        self._catalog[token] = cartridge
        self._payloads[token] = payload
        drive = self._pick_drive(cartridge)
        return drive.io(cartridge, length, "write")

    def retrieve(self, token: str) -> Event:
        """Read a segment back; the event's value is (payload, length)."""
        cartridge = self._catalog.get(token)
        if cartridge is None:
            raise KeyError(f"segment {token!r} not in library {self.name}")
        _, length = cartridge.segments[token]
        drive = self._pick_drive(cartridge)
        done = self.sim.event(name=f"retrieve:{token}")

        def _proc():
            yield drive.io(cartridge, length, "read")
            done.succeed((self._payloads.get(token), length))

        self.sim.process(_proc(), name="retrieve")
        return done

    def has(self, token: str) -> bool:
        return token in self._catalog

    def segment_length(self, token: str) -> float:
        cartridge = self._catalog[token]
        return cartridge.segments[token][1]
