"""E1 benchmark — Fig 2: SC'02 FCIP read performance."""

from repro.experiments.fig2_sc02 import run_fig2
from repro.util.units import GB, MB


def test_fig2_sc02(run_experiment):
    result = run_experiment(run_fig2, total_bytes=GB(20))
    # paper: >720 MB/s of a 8 Gb/s (=1000 MB/s raw, 900 usable) ceiling
    assert MB(650) < result.metric("mean_rate") <= result.metric("ceiling")
    assert result.metric("mean_rate") > 0.7 * result.metric("ceiling")
    # "the very sustainable character of the peak transfer rate": flat trace
    assert result.metric("sustained_fraction") > 0.9
    # latency did not prevent performance: 80 ms RTT is in the model
    assert result.metric("peak_rate") < GB(1)  # physically sane
