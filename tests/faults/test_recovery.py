"""Manager-failover tests: election, takeover, redirects, lock hygiene."""

from repro.core.tokens import RW
from repro.faults import (
    DiskLeaseDetector,
    FaultSchedule,
    NodeHealth,
    RetryPolicy,
    attach_faults,
)
from repro.faults.recovery import _table_keys
from repro.sim.kernel import Event

from tests.core.testbed import mounted, run_io, small_gfs

SIZE = 256 * 1024


def _write(g, m, path, nbytes=SIZE, fill=b"\x07"):
    def gen():
        h = yield m.open(path, "w", create=True)
        yield m.pwrite(h, 0, fill * nbytes)
        yield m.fsync(h)
        yield m.close(h)

    run_io(g, gen())


def failover_scenario(lease=0.5, sweep=0.1, crash_after=0.2, restart_after=4.0):
    """Two clients holding tokens; the manager dies and later rejoins."""
    g, cluster, fs, _ = small_gfs(nsd_servers=4, clients=2)
    m0 = mounted(g, cluster, node="c0")
    m1 = mounted(g, cluster, node="c1")
    _write(g, m0, "/a")
    _write(g, m1, "/b")
    t0 = g.sim.now
    schedule = (
        FaultSchedule()
        .crash_manager(t0 + crash_after, fs.manager_node)
        .restart_node(t0 + restart_after, fs.manager_node)
    )
    harness = attach_faults(
        g.sim, fs.service, manager_node=fs.manager_node,
        schedule=schedule, engine=g.engine, network=g.network,
        lease_duration=lease, retry=RetryPolicy(),
        retry_rng=g.rng.stream("faults.retry"),
        token_managers=[fs.token_manager], filesystem=fs,
        election_sweep=sweep,
    )
    return g, fs, harness, (m0, m1)


class TestManagerTakeover:
    def test_takeover_rebuilds_table_and_moves_role(self):
        g, fs, harness, (m0, _m1) = failover_scenario()
        tm = fs.token_manager
        old = fs.manager_node
        ghost = _table_keys(tm._held)
        assert ghost  # both clients hold tokens going into the outage
        g.run(until=g.sim.timeout(2.5))  # crash -> detect -> take over
        rec = harness.recovery
        assert rec is not None and len(rec.takeovers) == 1
        dead, successor, t_detect, t_done = rec.takeovers[0]
        assert dead == old
        assert successor == "nsd1"  # lowest-id live quorum-holding server
        assert t_done > t_detect
        assert fs.manager_node == successor and tm.node == successor
        assert tm.epoch == 1
        assert rec.rebuild_mismatches == 0
        assert rec.replayed_clients == 2  # c0 and c1 both answered
        # Every holder survived the crash, so the replay rebuild must
        # reproduce the pre-crash table exactly.
        assert _table_keys(tm._held) == ghost
        # The control-plane outage is marked distinctly from the reroute.
        assert fs.service.manager_downs == 1
        metrics = harness.metrics()
        assert metrics["manager_downs"] == 1.0
        assert metrics["manager_takeovers"] == 1.0
        assert metrics["manager_elections"] >= 1.0
        # Grants flow against the successor.
        _write(g, m0, "/after")
        # Outlive the old manager's restart: it rejoins as a plain server.
        g.run(until=g.sim.timeout(3.0))
        harness.stop()
        assert harness.detector.recoveries
        assert old in {r[0] for r in harness.detector.recoveries}

    def test_takeover_is_deterministic(self):
        def run_once():
            g, fs, harness, _ = failover_scenario()
            g.run(until=g.sim.timeout(6.0))
            harness.stop()
            return harness.recovery.takeovers, harness.metrics()

        takeovers_a, metrics_a = run_once()
        takeovers_b, metrics_b = run_once()
        assert takeovers_a == takeovers_b  # bit-identical, not approx
        assert metrics_a == metrics_b

    def test_outage_write_parks_then_redirects(self):
        g, fs, harness, (_m0, m1) = failover_scenario()
        tm = fs.token_manager
        done = [False]

        def late_write():
            # Issued after the crash, before the takeover completes: the
            # acquire parks at the manager fence, aborts with
            # ManagerMovedError when the epoch advances, and the token
            # client re-issues it at the successor.
            yield g.sim.timeout(0.4)
            h = yield m1.open("/during", "w", create=True)
            yield m1.pwrite(h, 0, b"\x01" * SIZE)
            yield m1.fsync(h)
            yield m1.close(h)
            done[0] = True

        g.sim.process(late_write(), name="late-write")
        g.run(until=g.sim.timeout(5.0))
        harness.stop()
        assert done[0]  # the application never saw the outage
        assert tm.redirects >= 1


class TestRevokeLockHygiene:
    def test_holder_death_mid_revoke_does_not_leak_ino_lock(self):
        """Regression: a holder dying while its revoke-flush is wedged
        used to leave the per-ino lock held forever."""
        g, cluster, fs, _ = small_gfs(nsd_servers=4, clients=3)
        m0 = mounted(g, cluster, node="c0")
        _write(g, m0, "/f")
        ino = fs.namespace.resolve("/f").ino
        tm = fs.token_manager

        def wedge(ino_, lo, hi):
            yield Event(g.sim)  # a flush that never completes

        tm.register_client("c2", wedge)
        g.run(until=tm.acquire("c2", ino, 0, SIZE, RW))

        health = NodeHealth(g.sim)
        detector = DiskLeaseDetector(
            g.sim, fs.service, health, manager_node="nsd0",
            nodes=["c2"], lease_duration=0.5, token_managers=[tm],
        )
        tm.failure_detector = detector
        detector.start()
        g.run(until=g.sim.timeout(0.2))  # c2 renews: responsive on entry

        def rewrite():
            h = yield m0.open("/f", "w")
            yield m0.pwrite(h, 0, b"\x02" * SIZE)
            yield m0.fsync(h)
            yield m0.close(h)

        proc = g.sim.process(rewrite(), name="conflicting-write")
        g.run(until=g.sim.timeout(0.05))  # revoke dispatched, flush wedged
        assert not proc.triggered
        health.crash("c2")
        g.run(until=proc)  # hangs forever without the crash-time sweep
        detector.stop()
        assert tm.revokes_abandoned_dead == 1
        assert tm.dead_holder_releases >= 1
        assert tm.client_ranges(ino, "c2") == []
        # The per-ino lock drained: a fresh acquire completes.
        g.run(until=tm.acquire("c0", ino, 0, SIZE, RW))


class TestManagerDownMarker:
    def test_mark_down_counts_only_manager_nodes(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        assert fs.manager_node in fs.service.manager_nodes
        fs.service.mark_down(fs.manager_node)
        assert fs.service.manager_downs == 1
        fs.service.mark_down("nsd1")  # ordinary server: data-path only
        assert fs.service.manager_downs == 1

    def test_move_manager_retargets_marker_set(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        old = fs.manager_node
        fs.move_manager("nsd2")
        assert fs.manager_node == "nsd2"
        assert "nsd2" in fs.service.manager_nodes
        assert old not in fs.service.manager_nodes
        fs.service.mark_down(old)  # demoted node no longer counts
        assert fs.service.manager_downs == 0
