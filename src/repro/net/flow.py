"""Fluid flows and the flow engine.

A :class:`Flow` is ``nbytes`` moving along a routed path. The
:class:`FlowEngine` keeps the set of active flows; whenever it changes, it
re-solves max-min fair rates with each flow capped by its TCP model,
advances residual bytes, and schedules the next completion. Changes within
one simulation instant coalesce into a single re-solve.

The re-solve is *incremental* end-to-end (see
:class:`repro.net.fairshare.FairshareState`): flows live in an
insertion-ordered registry (insertion order == seq order, so nothing is
ever re-sorted), an arrival/departure re-solves only the connected
component of the link-sharing graph it touches, and per-flow kinematics
(residual bytes, predicted finish time) are slot-aligned numpy arrays:
residuals advance lazily and vectorized for exactly the flows whose rate
changed, completions are detected by one vectorized compare against the
predicted-finish array, and the next-completion timer is its minimum —
no per-flow Python loop survives on the per-event path.

Route-class aggregation
-----------------------

The NSD mesh is symmetric: N clients reading from M servers produce N·M
flows but only as many *distinct* (link-incidence column, TCP cap) pairs
as there are route classes — and flows in the same class provably receive
identical max-min rates. The engine therefore solves in class space by
default (``aggregate=True``): each distinct ``(route links, cap)`` key
owns one weighted :class:`~repro.net.fairshare.FairshareState` column, a
repeat transfer *joins* the class (a weight bump — no incidence-matrix or
union-find churn), a completion *leaves* it, and a class whose last
member left is parked at weight 0 (kept registered for cheap rejoin,
bounded by an LRU evict). Solver dimension drops from O(flows) to
O(classes).

Per-flow accounting stays exact: every flow owns an engine-level *slot*
(kinematics arrays + its entry in tag indexes), class rates are expanded
back to member slots after each solve, and the slot allocator reuses the
solver's exact LIFO/doubling discipline so slot numbering — and therefore
every order-sensitive float sum over slots — is identical whether the
engine aggregates or not. Combined with the solver's exactly-rounded
arithmetic (see ``fairshare``'s module docstring), ``aggregate=True`` and
``aggregate=False`` produce bit-identical per-flow rate series, byte
accounting, and tag series; the flag is an escape hatch, not a tolerance.

Tags: each transfer may carry string tags ("wan", "sdsc->ncsa", ...); the
engine maintains an exact piecewise-constant aggregate-rate series per tag —
this is what the figure harnesses plot (e.g. the three SCinet link traces of
Fig 8). Each tag keeps an incrementally maintained slot-index array
(append on add, swap-delete on finish), so a snapshot is one vectorized
gather-sum per tag with no per-change rebuild.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net import fairshare
from repro.net.fairshare import FairshareState
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.sim.kernel import Event, Simulation
from repro.sim.profile import PROFILE
from repro.sim.trace import TRACE
from repro.util.timeseries import TimeSeries
from repro.util.units import GB

#: A flow within this many seconds of its predicted drain counts as done
#: (guards float drift in time arithmetic).
_DONE_EPS_SECONDS = 1e-9

#: Residual bytes below this *fraction of the flow's size* count as fully
#: delivered (guards float drift in byte arithmetic). Relative on purpose:
#: the old absolute 1e-6-byte floor silently finished sub-microbyte flows
#: before they ever carried a byte.
_DONE_EPS_FRACTION = 1e-12

#: Relative slack when attributing a flow's bound: a rate within this of
#: the flow's cap counts as cap-limited; a link within this of full counts
#: as saturated.
_ATTR_EPS = 1e-6

#: Weight-0 (memberless) route classes kept parked for cheap rejoin before
#: the least-recently-parked one is evicted from the solver.
_MAX_PARKED_CLASSES = 256


def _cap_kind(
    tcp: TcpModel, rtt: float, peer_cap: Optional[float],
    has_path: bool, local_rate: float,
) -> str:
    """Which term of the flow's rate cap is binding (bound attribution).

    Candidates mirror :meth:`FlowEngine.transfer`'s cap arithmetic: the
    TCP window limit, the Mathis loss limit, an explicit per-pair cap, and
    the loopback rate for pathless flows. Only evaluated when tracing is
    enabled — the disabled hot path never calls this.
    """
    candidates = [
        (tcp.efficiency * tcp.window_cap(rtt), "window/rtt"),
        (tcp.efficiency * tcp.mathis_cap(rtt), "mathis-loss"),
    ]
    if peer_cap is not None:
        candidates.append((peer_cap, "peer-cap"))
    if not has_path:
        candidates.append((local_rate, "local"))
    return min(candidates, key=lambda c: c[0])[1]


class Flow:
    """One in-flight transfer.

    While in flight, the engine tracks the flow's rate and residual bytes
    in slot-aligned arrays (``flow.slot`` indexes them); the ``rate`` and
    ``remaining`` attributes here are materialized when the flow finishes.
    Use :meth:`FlowEngine.flow_rate` for a mid-flight reading.
    """

    __slots__ = (
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "cap",
        "path_ids",
        "one_way_delay",
        "tags",
        "done",
        "start_time",
        "seq",
        "slot",
        "cap_kind",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: float,
        cap: float,
        path_ids: Sequence[int],
        one_way_delay: float,
        tags: tuple[str, ...],
        done: Event,
        now: float,
    ) -> None:
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.cap = cap
        self.path_ids = list(path_ids)
        self.one_way_delay = one_way_delay
        self.tags = tags
        self.done = done
        self.start_time = now
        self.seq = -1  # assigned by the engine for deterministic ordering
        self.slot = -1  # kinematics slot in the engine's arrays
        self.cap_kind: Optional[str] = None  # which cap term binds (tracing)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.src}->{self.dst} {self.remaining:.3g}/{self.size:.3g}B "
            f"@{self.rate:.3g}B/s>"
        )


class _RouteClass:
    """One (route links, rate cap) equivalence class of active flows.

    Owns one weighted solver column; ``members`` maps slot -> Flow in
    insertion order. A class with ``weight == 0`` is parked: the column
    stays registered (rejoin is a pure weight bump) until LRU-evicted.
    """

    __slots__ = ("key", "col", "members")

    def __init__(self, key, col: int) -> None:
        self.key = key
        self.col = col
        self.members: Dict[int, Flow] = {}


class _TagIndex:
    """Incrementally maintained array of the slots carrying one tag.

    Append on add; swap-with-last on remove. The array order (insertion
    order perturbed by deterministic swap-deletes) is a pure function of
    the add/remove sequence, so the order-sensitive float sum in
    ``_snapshot_tags`` associates identically across engine modes.
    """

    __slots__ = ("arr", "n", "pos")

    def __init__(self) -> None:
        self.arr = np.empty(8, dtype=np.intp)
        self.n = 0
        self.pos: Dict[int, int] = {}

    def add(self, slot: int) -> None:
        if self.n == self.arr.shape[0]:
            arr = np.empty(2 * self.n, dtype=np.intp)
            arr[: self.n] = self.arr
            self.arr = arr
        self.arr[self.n] = slot
        self.pos[slot] = self.n
        self.n += 1

    def remove(self, slot: int) -> None:
        j = self.pos.pop(slot)
        last = self.n - 1
        if j != last:
            moved = self.arr[last]
            self.arr[j] = moved
            self.pos[int(moved)] = j
        self.n = last

    def view(self) -> np.ndarray:
        return self.arr[: self.n]


class FlowEngine:
    """Shared-bandwidth transfer service over one :class:`Network`."""

    def __init__(
        self,
        sim: Simulation,
        network: Network,
        local_rate: float = GB(2.0),
        default_tcp: Optional[TcpModel] = None,
        aggregate: bool = True,
    ) -> None:
        """``local_rate`` bounds same-node (loopback/memory) transfers.

        ``aggregate=False`` disables route-class aggregation (one solver
        column per flow) — an escape hatch and the reference half of the
        bit-identity property tests; results are identical either way.
        """
        if local_rate <= 0:
            raise ValueError("local_rate must be positive")
        self.sim = sim
        self.network = network
        self.local_rate = local_rate
        self.default_tcp = default_tcp or TcpModel()
        self.aggregate = aggregate
        #: Insertion-ordered registry (dict-as-ordered-set): iteration order
        #: is seq order, so nothing ever needs re-sorting.
        self.flows: Dict[Flow, None] = {}
        self.bytes_moved = 0.0
        self.completed_flows = 0
        #: Always-on solver-churn counters (scraped by repro.obs; the
        #: finer-grained PROFILE counters stay opt-in). ``rate_changes``
        #: counts member flows whose rate moved (mode-independent).
        self.recomputes = 0
        self.rate_changes = 0
        #: Route-class registry health: transfers absorbed by a weight
        #: bump on an existing class (no solver-column churn).
        self.class_joins = 0
        self._state = FairshareState(network.link_capacities())
        #: (route links, cap) key -> class; unaggregated engines key by
        #: flow seq so classes never merge and park nothing.
        self._classes: Dict[object, _RouteClass] = {}
        self._class_by_col: Dict[int, _RouteClass] = {}
        #: Parked (weight-0) class keys in LRU order -> class.
        self._parked: Dict[object, _RouteClass] = {}
        #: Classes with live members (== solver columns doing work).
        self.live_classes = 0
        # Slot-aligned kinematics, grown on demand. A slot's residual is
        # exact as of _last_t[slot]; the rate has been constant since, so
        # the live residual at t is _rem[slot] - rate * (t - _last_t[slot])
        # and the predicted finish time _finish[slot] is exact (inf =
        # inactive or not yet rated). The allocator mirrors the solver's
        # LIFO/doubling column discipline so slot numbering is identical
        # across aggregate modes (see the module docstring).
        cap = self._state.capacity
        self._rem = np.zeros(cap)
        self._last_t = np.zeros(cap)
        self._fsize = np.zeros(cap)
        self._finish = np.full(cap, np.inf)
        self._slot_rate = np.zeros(cap)
        self._slot_flow: Dict[int, Flow] = {}
        self._free_slots: List[int] = list(range(cap - 1, -1, -1))
        #: (slot, col) pairs added since the last recompute; any whose
        #: class rate did not move still needs its slot rated.
        self._fresh_slots: List[Tuple[int, int]] = []
        self._tag_series: Dict[str, TimeSeries] = {}
        self._tag_idx: Dict[str, _TagIndex] = {}
        self._recompute_pending = False
        self._timer_token = 0
        self._next_seq = 0
        network.subscribe_rate_changes(self._on_link_rate_change)

    # -- public API -----------------------------------------------------------

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        tcp: Optional[TcpModel] = None,
        cap: Optional[float] = None,
        tags: Iterable[str] = (),
    ) -> Event:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with the :class:`Flow`) when the last
        byte *arrives* at ``dst`` — i.e. after the path drains plus one-way
        propagation delay.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tcp = tcp or self.default_tcp
        links = self.network.path(src, dst)
        delay = self.network.one_way_delay(src, dst)
        rtt = self.network.rtt(src, dst) if links else 0.0
        flow_cap = tcp.rate_cap(rtt)
        if cap is not None:
            flow_cap = min(flow_cap, cap)
        if not links:
            flow_cap = min(flow_cap, self.local_rate)
        done = self.sim.event(name=f"xfer:{src}->{dst}")
        now = self.sim.now
        flow = Flow(
            src,
            dst,
            nbytes,
            flow_cap,
            [l.index for l in links],
            delay,
            tuple(tags),
            done,
            now,
        )
        flow.seq = self._next_seq
        self._next_seq += 1
        if nbytes == 0:
            self.sim.schedule_callback(delay, lambda: done.succeed(flow))
            return done
        if TRACE.enabled:
            flow.cap_kind = _cap_kind(tcp, rtt, cap, bool(links), self.local_rate)
            TRACE.flow_created(self.sim, flow.seq, src, dst, nbytes, flow.tags)
        self.flows[flow] = None
        slot = flow.slot = self._alloc_slot()
        self._slot_flow[slot] = flow
        self._rem[slot] = nbytes
        self._last_t[slot] = now
        self._fsize[slot] = nbytes
        self._finish[slot] = np.inf
        self._slot_rate[slot] = 0.0
        cls = self._join_class(flow)
        cls.members[slot] = flow
        self._fresh_slots.append((slot, cls.col))
        for tag in flow.tags:
            self.tag_rate_series(tag)
            idx = self._tag_idx.get(tag)
            if idx is None:
                idx = self._tag_idx[tag] = _TagIndex()
            idx.add(slot)
        self._mark_dirty()
        return done

    def tag_rate_series(self, tag: str) -> TimeSeries:
        """Exact aggregate-rate trace (bytes/s) for flows carrying ``tag``."""
        series = self._tag_series.get(tag)
        if series is None:
            series = TimeSeries(name=tag)
            self._tag_series[tag] = series
        return series

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def flow_rate(self, flow: Flow) -> float:
        """Current allocated rate of an in-flight flow (0 if finished)."""
        if flow not in self.flows:
            return 0.0
        return float(self._slot_rate[flow.slot])

    def class_count(self) -> int:
        """Route classes with live members (== working solver columns)."""
        return self.live_classes

    def _on_link_rate_change(self, link, old_rate: float) -> None:
        """Network hook: a ``Link.set_rate`` schedules a recompute now.

        Capacity changes therefore bind at the current sim instant with no
        caller-side poke; the instant makes brownouts/flaps visible in
        Perfetto traces at the right time.
        """
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "link.set_rate", cat="net.link",
                lane=f"link:{link.name}", link=link.name,
                old_rate=old_rate, rate=link.rate,
            )
        self._mark_dirty()

    def poke(self) -> None:
        """Force a rate recompute at the current instant.

        Rarely needed: `Link.set_rate` already schedules a recompute via
        the network's rate-change hook. Kept for exotic mutations (e.g.
        editing `Link.efficiency` directly) and as a harmless no-op after
        set_rate — recomputes at one instant are coalesced. Only
        components containing a changed link are actually re-solved.
        """
        self._mark_dirty()

    def link_utilization(self) -> dict:
        """Instantaneous per-link used fraction (diagnostics).

        Keyed by link name; only links carrying at least one active flow
        appear. Delegates to :func:`repro.net.fairshare.link_utilization`.
        """
        if not self.flows:
            return {}
        flows = list(self.flows)
        util = fairshare.link_utilization(
            self.network.link_capacities(),
            [f.path_ids for f in flows],
            [float(self._slot_rate[f.slot]) for f in flows],
        )
        carrying = sorted({l for f in flows for l in f.path_ids})
        return {self.network.links[l].name: float(util[l]) for l in carrying}

    # -- engine internals -------------------------------------------------------

    def _alloc_slot(self) -> int:
        if not self._free_slots:
            old = self._rem.shape[0]
            new = max(2 * old, 1)
            for name, fill in (
                ("_rem", 0.0),
                ("_last_t", 0.0),
                ("_fsize", 0.0),
                ("_finish", np.inf),
                ("_slot_rate", 0.0),
            ):
                arr = np.full(new, fill)
                arr[:old] = getattr(self, name)
                setattr(self, name, arr)
            self._free_slots.extend(range(new - 1, old - 1, -1))
        return self._free_slots.pop()

    def _join_class(self, flow: Flow) -> _RouteClass:
        """Find-or-create the route class for ``flow`` and count it in."""
        if self.aggregate:
            key = (tuple(flow.path_ids), flow.cap)
        else:
            key = flow.seq  # unique: one class (and column) per flow
        cls = self._classes.get(key)
        if cls is None:
            col = self._state.add_flow(flow.path_ids, flow.cap)
            cls = _RouteClass(key, col)
            self._classes[key] = cls
            self._class_by_col[col] = cls
        else:
            w = self._state.weight_of(cls.col)
            if w == 0:
                del self._parked[key]
            self._state.set_weight(cls.col, w + 1)
            self.class_joins += 1
            if PROFILE.enabled:
                PROFILE.count("flowengine.class_joins")
        if not cls.members:
            self.live_classes += 1
        return cls

    def _leave_class(self, flow: Flow) -> None:
        cls = self._classes[
            (tuple(flow.path_ids), flow.cap) if self.aggregate else flow.seq
        ]
        del cls.members[flow.slot]
        if cls.members:
            self._state.set_weight(
                cls.col, self._state.weight_of(cls.col) - 1
            )
            return
        self.live_classes -= 1
        if not self.aggregate:
            self._drop_class(cls)
            return
        # Park for cheap rejoin; evict the least-recently-parked class
        # beyond the cap so idle route keys cannot grow the solver forever.
        self._state.set_weight(cls.col, 0)
        self._parked[cls.key] = cls
        if len(self._parked) > _MAX_PARKED_CLASSES:
            _, evicted = next(iter(self._parked.items()))
            del self._parked[evicted.key]
            self._drop_class(evicted)

    def _drop_class(self, cls: _RouteClass) -> None:
        self._state.remove_flow(cls.col)
        del self._classes[cls.key]
        del self._class_by_col[cls.col]

    def _mark_dirty(self) -> None:
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule_callback(0.0, self._recompute, name="flow-recompute")

    def _recompute(self) -> None:
        self._recompute_pending = False
        now = self.sim.now
        self.recomputes += 1
        if PROFILE.enabled:
            PROFILE.count("flowengine.recomputes")
            PROFILE.count("flowengine.active_rows", len(self.flows))
        self._finish_drained(now)
        if self.flows:
            self._state.set_link_caps(self.network.link_capacities())
            cols, _ = self._state.solve()
            # Expand changed class rates to member slots, then pick up
            # fresh members whose class rate happened not to move (their
            # slot rate is still 0; real rates are always positive).
            changed_slots: List[int] = []
            changed_cols: List[int] = []
            if cols.size:
                by_col = self._class_by_col
                for ci in cols.tolist():
                    members = by_col[ci].members
                    changed_slots.extend(members)
                    changed_cols.extend([ci] * len(members))
            if self._fresh_slots:
                seen = set(changed_slots)
                for slot, col in self._fresh_slots:
                    if (
                        slot not in seen
                        and self._slot_rate[slot] == 0.0
                        and slot in self._slot_flow
                    ):
                        changed_slots.append(slot)
                        changed_cols.append(col)
                self._fresh_slots.clear()
            if changed_slots:
                slots = np.asarray(changed_slots, dtype=np.intp)
                old_rates = self._slot_rate[slots]
                new_rates = self._state.rates[
                    np.asarray(changed_cols, dtype=np.intp)
                ]
                moved = new_rates != old_rates
                if moved.any():
                    slots = slots[moved]
                    old_rates = old_rates[moved]
                    new_rates = new_rates[moved]
                    self.rate_changes += int(slots.size)
                    if PROFILE.enabled:
                        PROFILE.count("flowengine.rate_changes", slots.size)
                    # Materialize residuals for exactly the flows whose
                    # rate changed (their old rate held from _last_t until
                    # now)...
                    rem = np.maximum(
                        0.0,
                        self._rem[slots] - old_rates * (now - self._last_t[slots]),
                    )
                    self._rem[slots] = rem
                    self._last_t[slots] = now
                    self._slot_rate[slots] = new_rates
                    # ... and re-predict finish times at the new rates.
                    self._finish[slots] = np.where(
                        rem <= self._fsize[slots] * _DONE_EPS_FRACTION,
                        now,
                        now + rem / new_rates,
                    )
                    if TRACE.enabled:
                        self._trace_rate_changes(slots)
        else:
            self._fresh_slots.clear()
        self._snapshot_tags(now)
        self._schedule_next_completion(now)

    def _finish_drained(self, now: float) -> None:
        """Complete every flow whose predicted finish time has arrived."""
        due = np.nonzero(self._finish <= now + _DONE_EPS_SECONDS)[0]
        if not due.size:
            return
        drained = [self._slot_flow[int(s)] for s in due]
        drained.sort(key=lambda f: f.seq)
        for f in drained:
            self._finish_flow(f)

    def _trace_rate_changes(self, slots: np.ndarray) -> None:
        """Record each changed flow's new rate with its bound tag.

        A flow at (or within :data:`_ATTR_EPS` of) its cap is bound by
        whichever cap term :func:`_cap_kind` identified at transfer time;
        otherwise the max-min property guarantees a saturated link on its
        path — attributed to the fullest one. Only called when tracing is
        enabled; costs one matvec over the incidence state per recompute.
        """
        caps = np.asarray(self.network.link_capacities())
        if caps.size:
            util = self._state.link_usage()[: caps.shape[0]] / caps
        else:
            util = caps
        for s in slots:
            flow = self._slot_flow.get(int(s))
            if flow is None:
                continue
            rate = float(self._slot_rate[int(s)])
            if rate >= flow.cap * (1.0 - _ATTR_EPS):
                bound = flow.cap_kind or "cap"
            else:
                best = -1
                best_u = 1.0 - _ATTR_EPS
                for l in flow.path_ids:
                    if util[l] > best_u:
                        best, best_u = l, util[l]
                if best >= 0:
                    bound = f"link:{self.network.links[best].name}"
                else:
                    bound = "uncapped"
            TRACE.flow_rate(self.sim, flow.seq, rate, bound)

    def _finish_flow(self, f: Flow) -> None:
        slot = f.slot
        del self.flows[f]
        self._leave_class(f)
        del self._slot_flow[slot]
        self._finish[slot] = np.inf
        self._slot_rate[slot] = 0.0
        self._free_slots.append(slot)
        for tag in f.tags:
            self._tag_idx[tag].remove(slot)
        f.rate = 0.0
        f.remaining = 0.0
        self.bytes_moved += f.size
        self.completed_flows += 1
        if TRACE.enabled:
            TRACE.flow_drained(self.sim, f.seq)
        if f.one_way_delay > 0:
            self.sim.schedule_callback(
                f.one_way_delay, lambda f=f: f.done.succeed(f), name="flow-arrive"
            )
        else:
            f.done.succeed(f)

    def _snapshot_tags(self, now: float) -> None:
        rates = self._slot_rate
        for tag, series in self._tag_series.items():
            idx = self._tag_idx.get(tag)
            if idx is not None and idx.n:
                total = float(rates[idx.view()].sum())
            else:
                total = 0.0
            series.add(now, total)

    def _schedule_next_completion(self, now: float) -> None:
        self._timer_token += 1
        if not self.flows:
            return
        horizon = float(self._finish.min()) - now
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows with zero rate — network has no capacity for them"
            )
        token = self._timer_token
        self.sim.schedule_callback(
            max(horizon, 0.0), lambda: self._on_timer(token), name="flow-finish"
        )

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a newer schedule
        self._recompute()
