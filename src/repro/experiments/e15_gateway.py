"""E15 — wide-area caching gateway: edge cache clusters vs direct mounts.

E7 made the paper's §1 argument quantitative: direct GFS access beats
wholesale staging because applications touch "individual pieces of very
large files". This experiment extends that argument to *latency*: a
database-style workload at a remote site pays one WAN round trip per
touched piece on a direct mount, no matter how often the same pieces are
re-read. A site-local caching gateway cluster (:mod:`repro.cache`, the
shape GPFS later productized as AFM/Panache) absorbs the re-reads:

* **cold** reads stream through the gateway and must cost about the same
  as a direct remote mount (the cache adds a LAN hop, not a second WAN
  trip);
* **warm** reads are served from the gateway's disk cache inside a
  validity lease — per-op latency collapses from ``RTT + transfer`` to
  the site-local floor, independent of WAN RTT;
* **writeback** acks writes at the edge and drains them home through
  coalesced RPCs, so a mixed read/write workload keeps edge-local
  latency while every acknowledged write still reaches home (fsync
  barriers the queue).

The sweep crosses WAN RTT x cache size x read/write mix; a final chaos
cell severs the WAN mid-workload and checks the partition contract:
reads inside a live lease keep completing from cache (zero failures),
writeback keeps acking, and the queue replays at heal with zero lost
acknowledged writes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache import CacheGateway, GatewayBlockCache
from repro.core.cluster import Gfs, NsdSpec
from repro.experiments.harness import ExperimentResult
from repro.faults import FaultSchedule, attach_faults
from repro.obs import (
    OBS,
    AvailabilityObjective,
    DEFAULT_LATENCY_BOUNDS,
    LatencyObjective,
    SloTracker,
)
from repro.util.tables import Table
from repro.util.units import Gbps, MB, MiB

#: analytic site-local floor for one warm 1 MiB read: LAN transfer at the
#: client NIC + gateway media read + control-message slack. The headline
#: acceptance bound is warm latency <= 2x this floor.
GW_DISK_RATE = MB(400)
EDGE_NIC = Gbps(1)

EDGE_CLIENTS = ("c0", "c1", "c2", "d0")
GW_NODES = ("gw0", "gw1")


def site_floor_s(chunk: int) -> float:
    return chunk / EDGE_NIC + chunk / GW_DISK_RATE + 0.001


def _build_cell(tag: str, wan_delay: float, block_size: int, seed: int,
                nsd_servers: int = 4, blocks_per_nsd: int = 8192):
    """Two clusters across a WAN: ``home`` serving, ``edge`` importing.

    The device name carries ``tag`` so every cell of the sweep registers
    distinct metric keys when the OBS registry is enabled.
    """
    g = Gfs(seed=seed)
    net = g.network
    net.add_node("home-sw", kind="switch")
    net.add_node("edge-sw", kind="switch")
    net.add_link("home-sw", "edge-sw", Gbps(10), delay=wan_delay)
    servers = [f"h{i}" for i in range(nsd_servers)]
    for name in servers + ["hc0"]:
        net.add_host(name, "home-sw", Gbps(1), site="home")
    for name in list(EDGE_CLIENTS) + list(GW_NODES):
        net.add_host(name, "edge-sw", EDGE_NIC, site="edge")
    home = g.add_cluster("home", site="home")
    home.add_nodes(servers + ["hc0"])
    edge = g.add_cluster("edge", site="edge")
    edge.add_nodes(list(EDGE_CLIENTS) + list(GW_NODES))
    device = f"gfs-{tag}"
    fs = home.mmcrfs(
        device,
        [NsdSpec(server=s, blocks=blocks_per_nsd) for s in servers],
        block_size=block_size,
        store_data=False,
    )
    home.mmauth_update("AUTHONLY")
    edge.mmauth_update("AUTHONLY")
    home_pub = home.mmauth_genkey()
    edge_pub = edge.mmauth_genkey()
    home.mmauth_add("edge", edge_pub)
    edge.mmremotecluster_add("home", home_pub, contact_nodes=[servers[0]])
    home.mmauth_grant("edge", device, "rw")
    edge.mmremotefs_add("remote", "home", device)
    return g, home, edge, fs


def _seed_file(g, home, device: str, path: str, nbytes: int):
    m = g.run(until=home.mmmount(device, "hc0"))

    def io():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, int(nbytes))
        yield m.close(h)

    g.run(until=g.sim.process(io(), name="seed"))
    return m


def _paced_read(g, mount, path, n_ops, chunk, stride_blocks, ok=None, failed=None):
    """Read ``n_ops`` chunks at block stride; returns (elapsed, latencies)."""

    def io():
        h = yield mount.open(path, "r")
        t0 = g.sim.now
        latencies: List[float] = []
        for i in range(n_ops):
            offset = (i % stride_blocks) * chunk
            ta = g.sim.now
            try:
                yield mount.pread(h, offset, chunk)
            except ConnectionError:
                if failed is not None:
                    failed[0] += 1
            else:
                if ok is not None:
                    ok[0] += 1
            latencies.append(g.sim.now - ta)
        yield mount.close(h)
        return g.sim.now - t0, latencies

    return g.run(until=g.sim.process(io(), name=f"read:{mount.node}"))


def _p95(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(0.95 * (len(ordered) - 1))]


def _run_cell(result: ExperimentResult, table: Table, rtt_ms: float,
              cache_frac: float, write_pct: int, *, file_blocks: int,
              mix_ops: int, seed: int) -> None:
    bs = int(MiB(1))
    tag = f"{int(rtt_ms)}ms-f{int(cache_frac * 100)}-w{write_pct}"
    g, home, edge, fs = _build_cell(tag, rtt_ms / 2000.0, bs, seed)
    cache_blocks = max(4, int(file_blocks * cache_frac)) + 8
    cache = GatewayBlockCache(
        cache_blocks * bs, bs, policy="2q", store_data=False
    )
    gw = CacheGateway(
        fs, list(GW_NODES), cache, name=f"gw-{tag}", mode="writeback",
        lease_duration=30.0,
    )
    _seed_file(g, home, fs.name, "/data", file_blocks * bs)

    # Database-style access: readahead off, so every op's latency is the
    # full request path (E7's "retrieving individual pieces" workload).
    m_direct = g.run(until=edge.mmmount("remote", "d0", readahead=0))
    m_cold = g.run(until=edge.mmmount("remote", "c0", gateway=gw, readahead=0))
    m_warm = g.run(until=edge.mmmount("remote", "c1", gateway=gw, readahead=0))
    m_mix = g.run(until=edge.mmmount("remote", "c2", gateway=gw, readahead=0))

    direct_s, direct_lat = _paced_read(
        g, m_direct, "/data", file_blocks, bs, file_blocks
    )
    cold_s, _cold_lat = _paced_read(
        g, m_cold, "/data", file_blocks, bs, file_blocks
    )
    warm_s, warm_lat = _paced_read(
        g, m_warm, "/data", file_blocks, bs, file_blocks
    )

    # Mixed phase: interleave warm re-reads with writeback writes.
    every = 0 if write_pct <= 0 else max(1, round(100 / write_pct))

    def mix_io():
        hr = yield m_mix.open("/data", "r")
        hw = yield m_mix.open("/mix", "w", create=True)
        t0 = g.sim.now
        for i in range(mix_ops):
            if every and i % every == 0:
                yield m_mix.pwrite(hw, (i % 4) * bs, bs)
            else:
                yield m_mix.pread(hr, (i % file_blocks) * bs, bs)
        yield m_mix.close(hw)  # fsync barrier: every acked write is home
        yield m_mix.close(hr)
        return g.sim.now - t0

    mix_s = g.run(until=g.sim.process(mix_io(), name="mix"))

    direct_mean = direct_s / file_blocks
    warm_mean = sum(warm_lat) / len(warm_lat)
    floor = site_floor_s(bs)
    prefix = f"r{int(rtt_ms)}_f{int(cache_frac * 100)}_w{write_pct}_"
    result.metrics.update(
        {
            prefix + "direct_s": direct_s,
            prefix + "cold_s": cold_s,
            prefix + "warm_s": warm_s,
            prefix + "mix_s": mix_s,
            prefix + "direct_mean_s": direct_mean,
            prefix + "warm_mean_s": warm_mean,
            prefix + "warm_p95_s": _p95(warm_lat),
            prefix + "cold_vs_direct": cold_s / direct_s if direct_s else 0.0,
            prefix + "warm_speedup": direct_mean / warm_mean if warm_mean else 0.0,
            prefix + "warm_over_floor": warm_mean / floor,
            prefix + "hit_ratio": gw.cache.hit_ratio,
            prefix + "origin_offload": gw.origin_offload,
            prefix + "write_acks": float(gw.write_acks),
            prefix + "writes_flushed": float(gw.writes_flushed),
            prefix + "lost_acked_writes": float(gw.write_acks - gw.writes_flushed),
        }
    )
    del direct_lat
    table.add_row(
        [
            f"{int(rtt_ms)}",
            f"{cache_frac:.0%}",
            f"{write_pct}%",
            f"{direct_mean * 1e3:.1f}",
            f"{warm_mean * 1e3:.1f}",
            f"{cold_s / direct_s:.2f}x" if direct_s else "-",
            f"{gw.origin_offload:.0%}",
            f"{gw.cache.hit_ratio:.0%}",
        ]
    )


def _run_chaos(result: ExperimentResult, *, rtt_ms: float, file_blocks: int,
               seed: int) -> dict:
    """WAN partition mid-workload: stale-within-lease reads + replay."""
    bs = int(MiB(1))
    wb_blocks = 8
    tag = f"chaos-{int(rtt_ms)}ms"
    g, home, edge, fs = _build_cell(tag, rtt_ms / 2000.0, bs, seed)
    cache = GatewayBlockCache(
        (4 * file_blocks + 16) * bs, bs, policy="lru", store_data=False
    )
    gw = CacheGateway(
        fs, list(GW_NODES), cache, name=f"gw-{tag}", mode="writeback",
        lease_duration=60.0,
    )
    _seed_file(g, home, fs.name, "/data", file_blocks * bs)
    m = g.run(until=edge.mmmount("remote", "c0", gateway=gw,
                                 pagepool_bytes=4 * bs, readahead=0))
    mw = g.run(until=edge.mmmount("remote", "c1", gateway=gw,
                                  pagepool_bytes=4 * bs, readahead=0))

    # Warm the gateway + every token the cut-off side will need.
    _paced_read(g, m, "/data", file_blocks, bs, file_blocks)

    def prep_writer():
        h = yield mw.open("/wb", "w", create=True)
        yield mw.write(h, wb_blocks * bs)
        yield mw.close(h)

    g.run(until=g.sim.process(prep_writer(), name="prep-writer"))

    t0 = g.sim.now
    cut_at, cut_len = t0 + 0.5, 4.0
    minority = list(EDGE_CLIENTS) + list(GW_NODES)
    harness = attach_faults(
        g.sim,
        fs.service,
        manager_node=fs.manager_node,
        schedule=FaultSchedule().partition(cut_at, minority, cut_len),
        engine=g.engine,
        network=g.network,
        token_managers=[fs.token_manager],
        gateways=[gw],
    )
    reads_ok = [0]
    reads_failed = [0]

    def reader():
        h = yield m.open("/data", "r")
        for i in range(140):
            try:
                yield m.pread(h, (i % file_blocks) * bs, bs)
            except ConnectionError:
                reads_failed[0] += 1
            else:
                reads_ok[0] += 1
            yield g.sim.timeout(0.02)
        yield m.close(h)

    def writer():
        h = yield mw.open("/wb", "r+")
        for i in range(36):
            yield mw.pwrite(h, (i % wb_blocks) * bs, bs)
            yield g.sim.timeout(0.1)
        yield mw.close(h)  # fsync barrier parks across the cut, drains at heal

    procs = [
        g.sim.process(reader(), name="chaos-reader"),
        g.sim.process(writer(), name="chaos-writer"),
    ]
    g.run(until=g.sim.all_of(procs))
    t_heal = cut_at + cut_len
    t_end = g.sim.now
    harness.stop()
    lost = gw.write_acks - gw.writes_flushed - gw.writes_through
    result.metrics.update(
        {
            "chaos_reads_ok": float(reads_ok[0]),
            "chaos_reads_failed": float(reads_failed[0]),
            "chaos_stale_hits": float(gw.stale_hits),
            "chaos_write_acks": float(gw.write_acks),
            "chaos_writes_flushed": float(gw.writes_flushed),
            "chaos_lost_acked_writes": float(lost),
            "chaos_conflicts": float(gw.conflicts),
            "chaos_dirty_queue_end": float(gw.dirty_queue_depth),
            "chaos_partitions": float(harness.partition.partitions),
            "chaos_heals": float(harness.partition.heals),
        }
    )
    return {
        "phases": [
            {"name": "nominal", "t0": t0, "t1": cut_at},
            {"name": "partitioned", "t0": cut_at, "t1": t_heal},
            {"name": "healed", "t0": t_heal, "t1": t_end},
        ],
        "sim": g.sim,
    }


def run_e15(
    rtts_ms: Sequence[float] = (10.0, 40.0, 80.0),
    cache_fractions: Sequence[float] = (1.0, 0.5),
    write_pcts: Sequence[int] = (0, 25),
    file_blocks: int = 96,
    mix_ops: int = 32,
    chaos: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep WAN RTT x cache size x read/write mix through the gateway."""
    result = ExperimentResult(
        exp_id="E15",
        title="wide-area caching gateway: edge cache vs direct WAN mounts",
        paper_claim="(§1 database-style access, extended: re-reads of remote "
        "pieces should cost site-local latency, not a WAN RTT)",
    )
    table = Table(
        [
            "RTT ms", "cache", "writes", "direct ms/op", "warm ms/op",
            "cold/direct", "offload", "hit",
        ],
        title=f"{file_blocks} MiB file, 1 MiB ops, readahead off "
        "(per-piece access, as in E7)",
    )
    for rtt_ms in rtts_ms:
        for frac in cache_fractions:
            for pct in write_pcts:
                _run_cell(
                    result, table, rtt_ms, frac, pct,
                    file_blocks=file_blocks, mix_ops=mix_ops, seed=seed,
                )
    result.table = table
    result.metrics["site_floor_s"] = site_floor_s(int(MiB(1)))
    obs_meta = None
    if chaos:
        obs_meta = _run_chaos(
            result, rtt_ms=max(rtts_ms), file_blocks=min(file_blocks, 24),
            seed=seed,
        )
    result.notes = (
        "warm reads stay within 2x the site-local floor at every RTT; a "
        "WAN cut mid-workload surfaces zero read failures inside the lease "
        "and zero lost acknowledged writes after replay"
    )
    if OBS.enabled and obs_meta is not None:
        OBS.scrape(obs_meta["sim"])
        le = next(b for b in DEFAULT_LATENCY_BOUNDS if b >= 1.0)
        tracker = (
            SloTracker()
            .add(LatencyObjective(
                name="edge_read_latency",
                metric="client.read.latency",
                le=le,
                target=0.99,
                window=2.0,
            ))
            .add(AvailabilityObjective(
                name="zero_failed_reads",
                ok_metric="client.read.ok",
                err_metric="client.read.errors",
                target=1.0,
                window=2.0,
            ))
        )
        result.obs = {
            "phases": obs_meta["phases"],
            "slo": tracker.evaluate(OBS.rows),
        }
    return result


def run_e15_quick(**overrides) -> ExperimentResult:
    """Scaled-down E15 for CI and the --quick registry."""
    params = dict(
        rtts_ms=(20.0, 80.0),
        cache_fractions=(1.0, 0.5),
        write_pcts=(0, 25),
        file_blocks=24,
        mix_ops=12,
    )
    params.update(overrides)
    return run_e15(**params)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e15()))
