"""The SC'04 sort: read everything, write everything, network-limited.

§4: "we also used a simple sorting application that merely sorted the data
output by Enzo, and was completely network limited. This was run in both
directions, to look for any differences in reading and writing." The
generator reads an input file and writes an equal-sized output, optionally
as alternating read/write *phases* (the alternating pattern visible in the
Fig 8 trace).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.kernel import Event
from repro.workloads.base import WorkloadResult, payload_for


class SortApp:
    """External sort over the GFS."""

    def __init__(
        self,
        mount,
        in_path: str,
        out_path: str,
        chunk: int = 0,
        phase_bytes: float = 0,
    ) -> None:
        """``phase_bytes``: alternate read/write every this many bytes
        (0 = read the whole input, then write the whole output)."""
        self.mount = mount
        self.in_path = in_path
        self.out_path = out_path
        self.chunk = chunk or mount.fs.block_size * 2
        self.phase_bytes = phase_bytes

    def run(self) -> Event:
        return self.mount.sim.process(self._run(), name="sort")

    def _run(self) -> Generator[Event, None, WorkloadResult]:
        sim = self.mount.sim
        t0 = sim.now
        result = WorkloadResult(name="sort")
        hin = yield self.mount.open(self.in_path, "r")
        size = hin.inode.size
        hout = yield self.mount.open(self.out_path, "w", create=True)
        phase = self.phase_bytes or size
        pos = 0
        while pos < size:
            # read phase
            read_end = min(pos + phase, size)
            rp = pos
            while rp < read_end:
                n = min(self.chunk, read_end - rp)
                yield self.mount.pread(hin, rp, n)
                rp += n
            result.bytes_read += read_end - pos
            # write phase (sorted run of equal size)
            wp = pos
            while wp < read_end:
                n = int(min(self.chunk, read_end - wp))
                yield self.mount.pwrite(hout, wp, payload_for(self.mount, n))
                wp += n
            result.bytes_written += read_end - pos
            pos = read_end
        yield self.mount.fsync(hout)
        yield self.mount.close(hout)
        yield self.mount.close(hin)
        result.elapsed = sim.now - t0
        return result
