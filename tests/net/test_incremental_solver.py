"""Unit tests for the persistent incremental solver (FairshareState).

The contract under test: a sequence of add/remove/cap mutations followed by
``solve()`` must yield the same allocation as a from-scratch
:func:`max_min_rates` over the currently-active flows (within float
round-off), while only re-solving components that actually changed.
"""

import numpy as np
import pytest

from repro.net.fairshare import FairshareState, max_min_rates

INF = float("inf")


def active_rates(state, cols):
    return np.array([state.rate_of(c) for c in cols])


def reference(caps, flows):
    """Stateless allocation for [(path, fcap), ...]."""
    return max_min_rates(caps, [p for p, _ in flows], [c for _, c in flows])


class TestLifecycle:
    def test_add_solve_remove(self):
        st = FairshareState([100.0])
        c0 = st.add_flow([0], INF)
        c1 = st.add_flow([0], INF)
        cols, old = st.solve()
        assert sorted(cols) == [c0, c1]
        assert list(old) == [0.0, 0.0]
        assert st.rate_of(c0) == pytest.approx(50.0)
        st.remove_flow(c1)
        st.solve()
        assert st.rate_of(c0) == pytest.approx(100.0)
        assert st.rate_of(c1) == 0.0

    def test_freed_columns_are_reused(self):
        st = FairshareState([100.0], capacity=4)
        c0 = st.add_flow([0], INF)
        st.solve()
        st.remove_flow(c0)
        assert st.add_flow([0], INF) == c0  # LIFO free list

    def test_capacity_doubles_on_demand(self):
        st = FairshareState([1000.0], capacity=2)
        cols = [st.add_flow([0], INF) for _ in range(10)]
        assert st.capacity >= 10
        st.solve()
        assert active_rates(st, cols) == pytest.approx([100.0] * 10)

    def test_remove_inactive_column_rejected(self):
        st = FairshareState([100.0])
        with pytest.raises(ValueError):
            st.remove_flow(0)

    def test_link_rows_grow_on_demand(self):
        # Engine construction can precede topology growth: a path may name
        # links the state has never seen. Capacities follow via set_link_caps.
        st = FairshareState([])
        c0 = st.add_flow([0, 2], INF)
        st.set_link_caps([100.0, 50.0, 30.0])
        st.solve()
        assert st.rate_of(c0) == pytest.approx(30.0)

    def test_link_removal_rejected(self):
        st = FairshareState([100.0, 100.0])
        with pytest.raises(ValueError):
            st.set_link_caps([100.0])

    def test_invalid_caps_rejected(self):
        st = FairshareState([100.0])
        with pytest.raises(ValueError):
            st.add_flow([0], 0.0)
        with pytest.raises(ValueError):
            st.add_flow([], INF)  # pathless needs a finite cap
        with pytest.raises(ValueError):
            st.set_link_caps([0.0])
        with pytest.raises(ValueError):
            FairshareState([-1.0])


class TestPathless:
    def test_rated_at_cap_on_next_solve(self):
        st = FairshareState([100.0])
        c0 = st.add_flow([], 7.5)
        cols, old = st.solve()
        assert list(cols) == [c0]
        assert list(old) == [0.0]
        assert st.rate_of(c0) == 7.5

    def test_does_not_dirty_any_link_component(self):
        st = FairshareState([100.0])
        c0 = st.add_flow([0], INF)
        st.solve()
        st.add_flow([], 5.0)
        cols, _ = st.solve()
        assert c0 not in cols  # linked component untouched


class TestComponentPartitioning:
    def test_disjoint_components_solve_independently(self):
        # Links 0,1 form one component (shared by a two-hop flow); link 2
        # is its own. Arrivals on link 2 must not re-solve links 0/1.
        st = FairshareState([100.0, 30.0, 60.0])
        a0 = st.add_flow([0, 1], INF)
        a1 = st.add_flow([0], INF)
        st.solve()
        assert st.rate_of(a0) == pytest.approx(30.0)
        assert st.rate_of(a1) == pytest.approx(70.0)
        b0 = st.add_flow([2], INF)
        cols, _ = st.solve()
        assert list(cols) == [b0]
        assert st.component_sizes() == [1, 2]

    def test_cap_change_dirties_only_its_component(self):
        st = FairshareState([100.0, 60.0])
        a = st.add_flow([0], INF)
        b = st.add_flow([1], INF)
        st.solve()
        st.set_link_caps([80.0, 60.0])
        cols, old = st.solve()
        assert list(cols) == [a]
        assert list(old) == [100.0]
        assert st.rate_of(a) == pytest.approx(80.0)
        assert st.rate_of(b) == pytest.approx(60.0)

    def test_unchanged_caps_are_a_noop(self):
        st = FairshareState([100.0])
        st.add_flow([0], INF)
        st.solve()
        st.set_link_caps([100.0])
        cols, _ = st.solve()
        assert cols.size == 0

    def test_arrival_merges_components(self):
        st = FairshareState([100.0, 100.0])
        a = st.add_flow([0], INF)
        b = st.add_flow([1], INF)
        st.solve()
        assert st.component_sizes() == [1, 1]
        bridge = st.add_flow([0, 1], INF)
        cols, _ = st.solve()
        assert st.component_sizes() == [3]
        # The merged component re-solves as one; a and b keep their rates
        # only if the numbers happen to agree — here they change.
        assert sorted(cols) == sorted([a, b, bridge])

    def test_partition_rebuild_splits_coarsened_components(self):
        st = FairshareState([100.0, 100.0])
        st._REBUILD_REMOVALS = 1  # force a rebuild on the next solve
        a = st.add_flow([0], INF)
        b = st.add_flow([1], INF)
        bridge = st.add_flow([0, 1], INF)
        st.solve()
        assert st.component_sizes() == [3]
        st.remove_flow(bridge)
        st.solve()
        # Removal only coarsens lazily; the forced rebuild re-splits.
        assert st.component_sizes() == [1, 1]
        assert st.rate_of(a) == pytest.approx(100.0)
        assert st.rate_of(b) == pytest.approx(100.0)


class TestAgreementWithStateless:
    def test_matches_max_min_rates_under_churn(self):
        # Deterministic churn over a small mesh; after every mutation the
        # incremental rates must match a from-scratch solve (1e-9 rel).
        caps = [100.0, 40.0, 250.0, 80.0, 10.0]
        paths = [[0], [0, 1], [2], [2, 3], [3], [4], [0, 4], [1, 3], []]
        st = FairshareState(caps)
        live = {}  # col -> (path, fcap)
        for step in range(120):
            pick = step % len(paths)
            path = paths[pick]
            fcap = 5.0 + 3.0 * pick if (pick % 3 == 0 or not path) else INF
            col = st.add_flow(path, fcap)
            live[col] = (path, fcap)
            if step % 4 == 3:  # drop the oldest
                victim = next(iter(live))
                st.remove_flow(victim)
                del live[victim]
            st.solve()
            got = active_rates(st, list(live))
            want = reference(caps, list(live.values()))
            np.testing.assert_allclose(got, want, rtol=1e-9)

    def test_cap_churn_matches_stateless(self):
        caps = [100.0, 60.0]
        st = FairshareState(caps)
        cols = [st.add_flow([0], INF), st.add_flow([0, 1], INF), st.add_flow([1], 20.0)]
        flows = [([0], INF), ([0, 1], INF), ([1], 20.0)]
        st.solve()
        for new_caps in ([80.0, 60.0], [80.0, 15.0], [200.0, 15.0], [100.0, 60.0]):
            st.set_link_caps(new_caps)
            st.solve()
            np.testing.assert_allclose(
                active_rates(st, cols), reference(new_caps, flows), rtol=1e-9
            )

    def test_solve_reports_old_rates(self):
        st = FairshareState([100.0])
        c0 = st.add_flow([0], INF)
        st.solve()
        c1 = st.add_flow([0], INF)
        cols, old = st.solve()
        by_col = dict(zip(cols.tolist(), old.tolist()))
        assert by_col[c0] == pytest.approx(100.0)  # rate before this solve
        assert by_col[c1] == pytest.approx(0.0)
