"""Event loop, events, and generator-based processes.

The kernel is deliberately minimal but complete enough for the reproduction:

* :class:`Event` — one-shot occurrence carrying a value or an exception.
* :class:`Timeout` — event that fires after a delay.
* :class:`Process` — drives a generator; each yielded event suspends the
  process until the event fires. A process is itself an event (fires when the
  generator returns), so processes compose: ``yield other_process``.
* :class:`AllOf` / :class:`AnyOf` — barrier / race combinators.
* :class:`Simulation` — the clock and the heap.

Determinism: events scheduled at equal times fire in (priority, scheduling
order). There is no wall-clock anywhere.

Fast paths (all provably order-identical to the straightforward
implementation — every heap entry still consumes exactly one ``(time,
priority, seq)`` slot at exactly the position the slow path would have
used; see ``tests/property/test_kernel_order.py``):

* heap entries are ``(time, (priority << 62) | seq, item)`` — one packed
  sort key instead of a 4-tuple;
* zero-delay NORMAL entries (event triggers, process resumes — the bulk of
  all traffic) bypass the heap through a FIFO lane: a deque entry keyed
  identically to its would-be heap entry, drained strictly before any heap
  entry that sorts after it, so the merged pop order is exactly the heap
  order without the O(log n) sifts;
* :class:`Process` resumes dispatch directly to ``gen.send``/``gen.throw``
  instead of allocating a closure per resume;
* waiting on an already-processed event pushes a tiny :class:`_Resume`
  trampoline instead of constructing and triggering a relay :class:`Event`;
* :meth:`Simulation.schedule_callback` pushes a :class:`_Callback` heap
  entry (no :class:`Event`, no closure);
* zero-and-low-delay :class:`Timeout` sequencers are recycled through a
  small pool when provably unreferenced (``sys.getrefcount``), skipping
  object construction entirely (profile counter
  ``kernel.timeout_pool_hits``).

Scheduling-boundary validation: negative delays are rejected with a clear
error *at the call that supplied them* (:meth:`Simulation._enqueue`,
:meth:`Simulation.schedule_callback`, :class:`Timeout`), naming the event —
previously they surfaced later as "time went backwards (kernel bug)" far
from the offending caller. That boundary check is also what lets the run
loops drop the per-event monotonicity re-check.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount as _getrefcount
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.profile import PROFILE

#: Priority for ordinary events.
NORMAL = 1
#: Priority for "urgent" bookkeeping events that must precede normal ones
#: scheduled at the same instant (used by resource releases).
URGENT = 0

#: NORMAL priority pre-shifted into the packed heap key.
_NB = NORMAL << 62

#: Max recycled Timeout objects kept per simulation.
_TPOOL_MAX = 512


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running without events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence.

    Life cycle: *pending* → *triggered* (scheduled on the heap) →
    *processed* (callbacks run). ``succeed``/``fail`` trigger it; waiting
    processes resume with the value, or have the failure thrown into them.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_defused",
        "name",
    )

    def __init__(self, sim: "Simulation", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not fired yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._push_now(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger with an exception; waiters have it thrown into them."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._push_now(self)
        return self

    # -- internal ------------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks. Called by the event loop exactly once."""
        callbacks = self.callbacks
        self.callbacks = None
        self._processed = True
        for cb in callbacks:  # type: ignore[union-attr]
            cb(self)
        if self._ok is False and not callbacks and not self._defused:
            raise self._value  # unhandled failure with nobody listening

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.__class__.__name__
        return f"<{label} triggered={self._triggered} ok={self._ok}>"


class Timeout(Event):
    """Event that fires ``delay`` seconds after construction.

    Instances may be recycled through :attr:`Simulation._tpool` once
    processed *and* provably unreferenced; see :meth:`Simulation.timeout`.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        # Inlined Event.__init__ (hot path): a Timeout is born triggered.
        self.sim = sim
        self.name = "Timeout"
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        sim._push(delay, NORMAL, self)


class _Callback:
    """Heap entry that runs a bare function — no :class:`Event` machinery.

    ``callbacks = None`` makes it quack like an already-processed event to
    the few internals that look (e.g. interrupt cancellation).
    """

    __slots__ = ("fn", "name")
    callbacks = None

    def __init__(self, fn: Callable[[], None], name: str = "") -> None:
        self.fn = fn
        self.name = name

    def _process(self) -> None:
        self.fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<callback {self.name or self.fn!r}>"


class _Resume:
    """Heap entry that resumes one process directly (relay-event fast path).

    Replaces the ``relay = Event(...); relay.succeed(target.value)`` dance
    for targets that already fired: it occupies the exact ``(time,
    priority, seq)`` slot the relay would have, so global ordering is
    unchanged, but skips the Event allocation, the callbacks list, and the
    triggered/processed bookkeeping. Cancellation (interrupt delivered
    first) is detected by the process having moved on: ``proc._target is
    not self``.
    """

    __slots__ = ("proc", "value", "throw")
    callbacks = None

    def __init__(self, proc: "Process", value: Any, throw: bool) -> None:
        self.proc = proc
        self.value = value
        self.throw = throw

    def _process(self) -> None:
        p = self.proc
        if p._target is not self:
            return  # interrupted (or otherwise detached) before we fired
        p._target = None
        p._step(self.value, self.throw)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<resume {self.proc.name!r} throw={self.throw}>"


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        self._count = 0
        if any(e.sim is not sim for e in self.events):
            raise SimulationError("all events of a condition must share a simulation")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # ``processed`` (not ``triggered``): a Timeout is "triggered" from
        # construction, but only events whose callbacks have started running
        # have actually occurred at this instant.
        return {e: e.value for e in self.events if e.processed and e.ok}


class AllOf(_Condition):
    """Fires when every child event has fired; value is ``{event: value}``.

    Fails fast if any child fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event._defused = True  # late failure: condition already decided
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires (success or failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self.succeed(self._collect())


class Process(Event):
    """Drives a generator; suspends on each yielded :class:`Event`.

    The process fires (as an event) when its generator returns; the generator's
    return value becomes the process's value. Uncaught exceptions in the
    generator fail the process; if nothing is waiting on it, they propagate
    out of :meth:`Simulation.run` (no silent death).
    """

    __slots__ = ("gen", "_target")

    def __init__(self, sim: "Simulation", gen: Generator[Event, Any, Any], name: str = "") -> None:
        if type(gen) is not GeneratorType and not (
            hasattr(gen, "send") and hasattr(gen, "throw")
        ):
            raise TypeError(f"process requires a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        # Kick off on a zero-delay trampoline so creation order == start order
        # (same seq slot the old init Event consumed).
        entry = _Resume(self, None, False)
        self._target: Any = entry
        sim._push_now(entry)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")

        # Deliver asynchronously so the interrupter continues first.
        def _deliver() -> None:
            if self._triggered:
                return  # finished in the meantime
            target = self._target
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            self._step(Interrupt(cause), True)

        self.sim._push_now(_Callback(_deliver, name=f"interrupt:{self.name}"))

    # -- internals -----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, False)
        else:
            event._defused = True
            self._step(event._value, True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self.gen.throw(value)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._triggered = True
            self._ok = False
            self._value = exc
            self.sim._push_now(self)
            return
        cbs = target.callbacks if isinstance(target, Event) else False
        if cbs is False:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
        if target.sim is not self.sim:
            raise SimulationError(f"process {self.name!r} yielded event from another simulation")
        if cbs is None:
            # Already processed: resume via an order-preserving trampoline.
            entry = _Resume(self, target._value, not target._ok)
            self._target = entry
            self.sim._push_now(entry)
        else:
            cbs.append(self._resume)
            self._target = target


class Simulation:
    """The event loop: a clock plus a heap of pending events.

    Two scheduling lanes, one logical order. Every entry conceptually
    carries the key ``(time, priority, seq)``; zero-delay NORMAL entries
    (the bulk: triggers, resumes, sequencers) are appended to ``_fifo``,
    everything else is heap-pushed. Because delays are validated
    non-negative, a FIFO entry's time always equals the current clock, so
    the FIFO holds a contiguous ascending-seq run at ``now`` and the merged
    pop — take the heap head only when it sorts before the FIFO head — is
    exactly the order a single heap would produce.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Any]] = []
        self._fifo: deque[tuple[float, int, Any]] = deque()
        self._seq = 0
        self._tpool: list[Timeout] = []
        #: Zero-delay timeouts served from the recycling pool (always-on:
        #: incremented outside the run loop, scraped by repro.obs).
        self.timeout_pool_hits = 0
        self.rng = None  # set lazily by RngRegistry users

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._tpool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay}")
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._processed = False
            t._defused = False
            t.delay = delay
            self._push(delay, NORMAL, t)
            self.timeout_pool_hits += 1
            if PROFILE.enabled:
                PROFILE.count("kernel.timeout_pool_hits")
            return t
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _push_now(self, item: Any) -> None:
        """Zero-delay NORMAL push: straight to the FIFO lane."""
        seq = self._seq
        self._seq = seq + 1
        self._fifo.append((self._now, _NB | seq, item))

    def _push(self, delay: float, priority: int, item: Any) -> None:
        """Internal unvalidated push: callers guarantee ``delay >= 0``."""
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0 and priority == NORMAL:
            self._fifo.append((self._now, _NB | seq, item))
        else:
            heappush(self._heap, (self._now + delay, (priority << 62) | seq, item))

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        """Schedule ``event``; the boundary where delays are validated."""
        if delay < 0:
            raise ValueError(
                f"negative delay {delay!r} scheduling event "
                f"{getattr(event, 'name', '') or event!r}"
            )
        self._push(delay, priority, event)

    def schedule_callback(self, delay: float, fn: Callable[[], None], name: str = "") -> _Callback:
        """Run ``fn`` after ``delay`` seconds (bookkeeping helper).

        Returns an opaque heap entry, not an :class:`Event` — callbacks are
        fire-and-forget and cannot be waited on.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r} scheduling callback {name or fn!r}")
        entry = _Callback(fn, name=name)
        self._push(delay, NORMAL, entry)
        return entry

    def _pop(self) -> Any:
        """Pop the globally next entry (callers ensure one exists)."""
        fifo = self._fifo
        heap = self._heap
        if fifo:
            if heap and heap[0] < fifo[0]:
                t, _key, item = heappop(heap)
                self._now = t
            else:
                item = fifo.popleft()[2]
        else:
            t, _key, item = heappop(heap)
            if t < self._now:
                raise SimulationError("time went backwards (kernel bug)")
            self._now = t
        return item

    # -- running -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap and not self._fifo:
            raise SimulationError("step() on an empty schedule")
        item = self._pop()
        if PROFILE.enabled:
            PROFILE.count("kernel.events")
        item._process()
        if type(item) is Timeout and len(self._tpool) < _TPOOL_MAX and _getrefcount(item) == 2:
            # Provably unreferenced (only `item` and the getrefcount argument
            # hold it): recycle. Anything retained by user code, a condition,
            # or `run(until=...)` has refcount > 2 and is left alone.
            self._tpool.append(item)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none."""
        if self._fifo:
            return self._fifo[0][0]
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the schedule drains, time ``until`` passes, or an event fires.

        Returns the event's value when ``until`` is an event.
        """
        heap = self._heap
        fifo = self._fifo
        tpool = self._tpool
        profile = PROFILE
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                # Inlined _pop() with the deadlock check folded in.
                if fifo:
                    if heap and heap[0] < fifo[0]:
                        t, _key, item = heappop(heap)
                        self._now = t
                    else:
                        item = fifo.popleft()[2]
                elif heap:
                    t, _key, item = heappop(heap)
                    self._now = t
                else:
                    raise SimulationError(
                        f"schedule drained before event {stop!r} fired (deadlock?)"
                    )
                if profile.enabled:
                    profile.count("kernel.events")
                item._process()
                if type(item) is Timeout and len(tpool) < _TPOOL_MAX and _getrefcount(item) == 2:
                    tpool.append(item)
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while True:
            # Inlined _pop() with the horizon check folded in. FIFO entries
            # fire at the current clock, which never exceeds the horizon, so
            # only heap heads need the bound re-checked.
            if fifo:
                if heap and heap[0] < fifo[0]:
                    t, _key, item = heappop(heap)
                    self._now = t
                else:
                    item = fifo.popleft()[2]
            elif heap:
                t = heap[0][0]
                if t > horizon:
                    break
                item = heappop(heap)[2]
                self._now = t
            else:
                break
            if profile.enabled:
                profile.count("kernel.events")
            item._process()
            if type(item) is Timeout and len(tpool) < _TPOOL_MAX and _getrefcount(item) == 2:
                tpool.append(item)
        if horizon != float("inf"):
            self._now = horizon
        return None
