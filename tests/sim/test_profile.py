"""Tests for the simulator self-profiler (`repro.sim.profile`)."""

import time

import pytest

from repro.sim import Profile


@pytest.fixture
def prof():
    p = Profile()
    p.enable()
    return p


class TestCounters:
    def test_count_accumulates(self, prof):
        prof.count("x")
        prof.count("x", 4)
        assert prof.counters["x"] == 5

    def test_disabled_is_noop(self):
        p = Profile()
        p.count("x")
        with p.timed("t"):
            pass
        assert not p.counters and not p.timers

    def test_snapshot_is_a_copy(self, prof):
        prof.count("x")
        snap = prof.snapshot()
        prof.count("x")
        assert snap["counters"]["x"] == 1

    def test_report_mentions_names(self, prof):
        prof.count("solver.rows", 3)
        assert "solver.rows" in prof.report()


class TestTimedReentrancy:
    def test_nested_same_name_counts_wall_time_once(self, prof):
        """Regression: nested timed("x") used to double-count wall time."""
        def busy(dt):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < dt:
                pass

        dt = 0.02
        with prof.timed("x"):
            with prof.timed("x"):
                busy(dt)
        # Double-counting would report >= 2*dt.
        assert prof.timers["x"] == pytest.approx(dt, rel=0.5)

    def test_recursive_call_site(self, prof):
        def recurse(n):
            with prof.timed("r"):
                if n:
                    recurse(n - 1)

        recurse(10)
        assert prof.timers["r"] < 0.1
        assert not prof._timed_depth  # fully unwound

    def test_distinct_names_accumulate_independently(self, prof):
        with prof.timed("a"):
            with prof.timed("b"):
                pass
        assert "a" in prof.timers and "b" in prof.timers

    def test_sequential_same_name_accumulates(self, prof):
        with prof.timed("x"):
            pass
        first = prof.timers["x"]
        with prof.timed("x"):
            pass
        assert prof.timers["x"] >= first

    def test_exception_unwinds_depth(self, prof):
        with pytest.raises(RuntimeError):
            with prof.timed("x"):
                raise RuntimeError("boom")
        assert not prof._timed_depth
        assert "x" in prof.timers

    def test_reset_clears_depth_state(self, prof):
        with prof.timed("x"):
            prof.reset()
        # The outer exit sees no stale depth and must not crash... the
        # accumulation after reset is allowed to re-create the timer.
        assert prof._timed_depth == {}
