"""GPFS-style disk-lease failure detection.

Every watched node periodically renews a *disk lease* with the
filesystem manager node (a tiny control message — latency-only, so
heartbeats never perturb data-path throughput). A crashed node stops
renewing; when its lease expires the detector declares it dead: it
drives ``NsdService.mark_down`` (triggering primary→backup failover on
the next block op), releases any byte-range tokens the corpse holds, and
fires events that parked RPCs race against. When the node restarts, its
first successful renewal marks it back up.

Detection latency is therefore bounded by
``lease_duration + check_interval`` after the last renewal — exactly the
knob GPFS exposes as *leaseDuration*, and the quantity E13 reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.registry import OBS
from repro.sim.kernel import Event, Interrupt, Process, Simulation
from repro.sim.trace import TRACE

#: Size of a lease-renewal message, bytes (one disk sector in GPFS).
LEASE_BYTES = 64.0


class DiskLeaseDetector:
    """Heartbeat + lease-expiry detector driving NSD up/down state."""

    def __init__(
        self,
        sim: Simulation,
        service,
        health,
        manager_node: str,
        nodes: Iterable[str],
        lease_duration: float = 1.5,
        renew_interval: float | None = None,
        check_interval: float | None = None,
        token_managers: Iterable = (),
    ) -> None:
        if lease_duration <= 0:
            raise ValueError(f"lease_duration must be positive, got {lease_duration}")
        self.sim = sim
        self.service = service
        self.health = health
        self.manager_node = manager_node
        self.nodes = list(dict.fromkeys(nodes))
        self.lease_duration = lease_duration
        # GPFS renews at ~2/3 of the lease; check twice per renewal period.
        self.renew_interval = (
            renew_interval if renew_interval is not None else lease_duration * (2 / 3)
        )
        self.check_interval = (
            check_interval if check_interval is not None else self.renew_interval / 2
        )
        if not 0 < self.renew_interval < self.lease_duration:
            raise ValueError(
                f"renew_interval must be in (0, lease_duration), got "
                f"{self.renew_interval}"
            )
        self.token_managers = list(token_managers)
        #: Optional repro.faults.QuorumService: while the manager node has
        #: no node quorum (minority side of a partition), declarations are
        #: suppressed — a minority must not declare the majority dead.
        self.quorum = None
        self.quorum_suppressed_checks = 0
        self._had_quorum = True
        #: Armed by the recovery manager: while the manager node itself
        #: is down, renewals land on a corpse, so expiries prove nothing
        #: about the rest of the fleet — declare only the manager (its
        #: silence is exactly the signal takeover waits on).
        self.watch_manager = False
        self.manager_suppressed_checks = 0
        self._manager_was_up = True
        self.detected_down: set[str] = set()
        self._expiry: Dict[str, float] = {}
        self._death_waiters: Dict[str, List[Event]] = {}
        self._procs: List[Process] = []
        #: (node, sim time declared dead) in declaration order.
        self.detections: List[Tuple[str, float]] = []
        #: (node, t_crash, t_detected, t_recovered) for each full cycle.
        self.recoveries: List[Tuple[str, float, float, float]] = []
        self._pending: Dict[str, Tuple[float, float]] = {}  # node -> (crash, det)
        self.renewals = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Seed leases and spawn the heartbeat and monitor processes."""
        if self._started:
            raise RuntimeError("detector already started")
        self._started = True
        now = self.sim.now
        for node in self.nodes:
            self._expiry[node] = now + self.lease_duration
            self._procs.append(
                self.sim.process(self._heartbeat(node), name=f"lease-renew:{node}")
            )
        self._procs.append(self.sim.process(self._monitor(), name="lease-monitor"))

    def stop(self) -> None:
        """Tear the detector down (end-of-experiment cleanup)."""
        for proc in self._procs:
            if not proc.triggered:
                proc.interrupt("detector stopped")
        self._procs.clear()

    # -- processes -----------------------------------------------------------

    def _heartbeat(self, node: str):
        try:
            while True:
                if not self.health.is_up(node):
                    # A dead machine sends nothing; park until restart, then
                    # renew immediately so recovery latency is one message.
                    yield self.health.wait_restart(node)
                else:
                    yield self.sim.timeout(self.renew_interval)
                    if not self.health.is_up(node):
                        continue  # crashed during the renew interval
                yield self._send_renewal(node)
                if not self.health.is_up(node):
                    continue  # crashed mid-flight: renewal never reached disk
                self.renewals += 1
                self._expiry[node] = self.sim.now + self.lease_duration
                if node in self.detected_down:
                    self._mark_up(node)
        except Interrupt:
            return

    def _send_renewal(self, node: str) -> Event:
        """The renewal write (overridable in tests to drop heartbeats)."""
        return self.service.messages.send(
            node, self.manager_node, nbytes=LEASE_BYTES
        )

    def _monitor(self):
        try:
            while True:
                yield self.sim.timeout(self.check_interval)
                now = self.sim.now
                if self.watch_manager and not self.health.is_up(self.manager_node):
                    # Control-plane outage: every renewal is landing on a
                    # corpse. The only meaningful expiry is the manager's
                    # own — declaring it triggers data-path failover and
                    # wakes the recovery manager's election.
                    self.manager_suppressed_checks += 1
                    self._manager_was_up = False
                    if (
                        self.manager_node in self._expiry
                        and self.manager_node not in self.detected_down
                        and now >= self._expiry[self.manager_node]
                    ):
                        self._declare_dead(self.manager_node)
                    continue
                if self.watch_manager and not self._manager_was_up:
                    # Manager back (in-place restart, or takeover re-armed
                    # us at a successor): expiries accumulated during the
                    # outage are meaningless — grant live nodes a fresh
                    # lease, mirroring the quorum-regain path below.
                    self._manager_was_up = True
                    for node in self.nodes:
                        if self.health.is_up(node):
                            self._expiry[node] = max(
                                self._expiry[node], now + self.lease_duration
                            )
                    continue
                if self.quorum is not None and not self.quorum.has_quorum(
                    self.manager_node
                ):
                    # Quorumless: renewals from the other side are parked in
                    # the network, so expiries prove nothing. Declare no one.
                    self.quorum_suppressed_checks += 1
                    self._had_quorum = False
                    continue
                if not self._had_quorum:
                    # Quorum regained (partition healed): grant every node a
                    # fresh lease — its parked renewals are in flight, and
                    # expiries accumulated during the cut are meaningless.
                    self._had_quorum = True
                    for node in self.nodes:
                        self._expiry[node] = max(
                            self._expiry[node], now + self.lease_duration
                        )
                    continue
                for node in self.nodes:
                    if node in self.detected_down:
                        continue
                    if now >= self._expiry[node]:
                        self._declare_dead(node)
        except Interrupt:
            return

    # -- state transitions ---------------------------------------------------

    def _declare_dead(self, node: str) -> None:
        self.detected_down.add(node)
        self.service.mark_down(node)
        for tm in self.token_managers:
            tm.release_all(node)
        now = self.sim.now
        crash = self.health.crash_time(node)
        self._pending[node] = (crash if crash is not None else now, now)
        self.detections.append((node, now))
        if OBS.enabled and crash is not None:
            OBS.observe("faults.detection_latency", now - crash)
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "lease.expired", cat="fault.detect",
                lane=f"node:{node}", node=node,
                lease=self.lease_duration,
            )
        for event in self._death_waiters.pop(node, []):
            if not event.triggered:
                event.succeed(node)

    def _mark_up(self, node: str) -> None:
        self.detected_down.discard(node)
        self.service.mark_up(node)
        crash, detected = self._pending.pop(node, (self.sim.now, self.sim.now))
        self.recoveries.append((node, crash, detected, self.sim.now))
        if OBS.enabled:
            OBS.observe("faults.mttr", self.sim.now - crash)
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "lease.renewed", cat="fault.recover",
                lane=f"node:{node}", node=node,
            )

    def rearm(self, manager_node: str) -> None:
        """Re-point detection at a successor manager after takeover.

        Heartbeats follow ``manager_node`` on their next renewal; live
        nodes get a fresh lease (their renewals during the outage reached
        a corpse, so their expiries are meaningless); dead nodes keep
        their expired leases and are declared on the next sweep.
        """
        self.manager_node = manager_node
        self._manager_was_up = True
        now = self.sim.now
        for node in self.nodes:
            if self.health.is_up(node):
                self._expiry[node] = max(
                    self._expiry[node], now + self.lease_duration
                )

    # -- queries -------------------------------------------------------------

    def watches(self, node: str) -> bool:
        return node in self._expiry

    def is_responsive(self, node: str) -> bool:
        """Would ``node`` answer a control message right now (ground truth)?"""
        return self.health.is_up(node)

    def declared_dead(self, node: str) -> Event:
        """Event that fires when ``node`` is (or already was) declared dead."""
        event = Event(self.sim)
        if node in self.detected_down:
            event.succeed(node)
        else:
            self._death_waiters.setdefault(node, []).append(event)
        return event

    # -- metrics -------------------------------------------------------------

    def detection_latencies(self) -> List[float]:
        """Seconds from actual crash to lease-expiry declaration."""
        out = [det - crash for _, crash, det, _ in self.recoveries]
        out.extend(det - crash for crash, det in self._pending.values())
        return out

    def mttr_values(self) -> List[float]:
        """Seconds from crash to the node being marked up again."""
        return [rec - crash for _, crash, _, rec in self.recoveries]

    def metrics(self) -> Dict[str, float]:
        det = self.detection_latencies()
        mttr = self.mttr_values()
        out: Dict[str, float] = {
            "lease_duration": self.lease_duration,
            "lease_renewals": float(self.renewals),
            "failures_detected": float(len(self.detections)),
            "recoveries": float(len(self.recoveries)),
        }
        if det:
            out["detection_latency_mean"] = sum(det) / len(det)
            out["detection_latency_max"] = max(det)
        if mttr:
            out["mttr_mean"] = sum(mttr) / len(mttr)
            out["mttr_max"] = max(mttr)
        if self.quorum is not None:
            out["quorum_suppressed_checks"] = float(self.quorum_suppressed_checks)
        if self.watch_manager:
            out["manager_suppressed_checks"] = float(self.manager_suppressed_checks)
        return out
