"""Tests for the RPC retry policy and its deterministic jitter."""

import pytest

from repro.faults import RetryPolicy
from repro.sim.rand import RngRegistry


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            RetryPolicy(rpc_timeout=0)

    def test_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_cap_below_base(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0, jitter=0.0)
        delays = [policy.backoff_delay(a, None) for a in range(1, 8)]
        assert delays[:4] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]
        assert all(d == pytest.approx(1.0) for d in delays[4:])

    def test_jitter_bounded(self):
        policy = RetryPolicy(jitter=0.25)
        rng = RngRegistry(3).stream("faults.retry")
        for attempt in range(1, 10):
            base = policy.backoff_delay(attempt, None)
            jittered = policy.backoff_delay(attempt, rng)
            assert base <= jittered <= base * 1.25

    def test_same_seed_same_delays(self):
        policy = RetryPolicy()
        a = RngRegistry(7).stream("faults.retry")
        b = RngRegistry(7).stream("faults.retry")
        seq_a = [policy.backoff_delay(i, a) for i in range(1, 20)]
        seq_b = [policy.backoff_delay(i, b) for i in range(1, 20)]
        assert seq_a == seq_b

    def test_different_seed_different_delays(self):
        policy = RetryPolicy()
        a = RngRegistry(7).stream("faults.retry")
        b = RngRegistry(8).stream("faults.retry")
        seq_a = [policy.backoff_delay(i, a) for i in range(1, 20)]
        seq_b = [policy.backoff_delay(i, b) for i in range(1, 20)]
        assert seq_a != seq_b
