"""Simulation-clock flight recorder with bottleneck attribution.

The paper's §2 argument is about *bounds*: each NSD flow is limited by
something (TCP window/RTT, the Mathis loss cap, a saturated link, a server
NIC) and the client×server mesh keeps the union of bounds at line rate.
This module records those bounds — and the full NSD → network → storage
data path — as the simulation runs:

* **spans** — ``begin``/``end`` (or the ``span`` context manager) stamped
  with *simulation* time, carrying a category, a lane (rendered as a
  thread in trace viewers), and free-form attributes;
* **instant events** — point markers;
* **flow lifecycle records** — created / rate-changed / drained, where
  every rate change carries a *bound tag* saying what limited the flow at
  that moment (``window/rtt``, ``mathis-loss``, ``link:<name>``,
  ``peer-cap``, ``local``, or ``uncapped``);
* a **bounded ring buffer** — old span/instant events are evicted, never
  grown without limit; flow records are bounded separately.

Like :data:`repro.sim.profile.PROFILE`, the recorder is a process-wide
singleton (:data:`TRACE`) that costs one attribute check per call site
when disabled, so instrumentation lives permanently in the data path::

    from repro.sim.trace import TRACE

    TRACE.enable()
    ...                       # run the simulation
    TRACE.disable()
    json.dump(TRACE.to_chrome(), fh)       # load in Perfetto / chrome://tracing
    summary = TRACE.metrics_snapshot()     # attribution + span statistics

``python -m repro trace E8 --out t.json`` and
``python -m repro report --trace-dir DIR`` wrap whole experiments this way.

Span names follow the instrumented layer: the NSD service emits
``nsd.write_block``/``nsd.read_block`` per single-block RPC and — on mounts that
coalesce (``max_coalesce > 1``) — ``nsd.write_blocks``/``nsd.read_blocks``
per scatter-gather run, carrying a ``blocks=<n>`` attribute so a trace
shows both the RPC count collapse and how many logical blocks each
coalesced round trip moved.

Timestamps are simulation seconds; the Chrome exporter scales to the
microseconds the trace-event format expects. Several simulations may run
while the recorder is enabled (parameter sweeps build one per cell); each
:class:`~repro.sim.kernel.Simulation` becomes its own ``pid`` in the
exported trace.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Default ring-buffer capacity (span + instant events).
DEFAULT_CAPACITY = 200_000
#: Default bound on retained flow lifecycle records.
DEFAULT_MAX_FLOWS = 100_000


class FlowRecord:
    """Lifecycle of one fluid flow: identity, rate history, bound tags."""

    __slots__ = (
        "rid", "pid", "seq", "src", "dst", "size", "tags",
        "t_start", "t_end", "history",
    )

    def __init__(self, rid: int, pid: int, seq: int, src: str, dst: str,
                 size: float, tags: Tuple[str, ...], t_start: float) -> None:
        self.rid = rid
        self.pid = pid
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size = size
        self.tags = tags
        self.t_start = t_start
        self.t_end: Optional[float] = None
        #: ``(sim_time, rate_bytes_per_s, bound_tag)`` per rate change.
        self.history: List[Tuple[float, float, str]] = []

    def timeline(self) -> List[Tuple[float, float, float, str]]:
        """Attribution segments ``(t0, t1, rate, bound)`` over the flow's life.

        The final segment is closed at drain time when known, else at the
        last recorded change (an open flow contributes a zero-length tail).
        """
        segs: List[Tuple[float, float, float, str]] = []
        for i, (t, rate, bound) in enumerate(self.history):
            if i + 1 < len(self.history):
                t1 = self.history[i + 1][0]
            else:
                t1 = self.t_end if self.t_end is not None else t
            segs.append((t, t1, rate, bound))
        return segs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "drained" if self.t_end is not None else "active"
        return (f"<FlowRecord {self.src}->{self.dst} {self.size:.3g}B "
                f"{state} {len(self.history)} rate changes>")


class Tracer:
    """The flight recorder: near-zero cost disabled, bounded when enabled.

    All recording methods take the owning simulation as the first argument
    and read its clock; callers must guard calls with ``if TRACE.enabled``
    (one attribute check) so the disabled hot path does no work at all.
    """

    __slots__ = (
        "enabled", "capacity", "max_flows",
        "_events", "events_recorded",
        "_open", "_next_sid",
        "_next_pid", "_span_stats",
        "flows", "_live", "_next_rid", "flows_dropped",
        "instants_recorded",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 max_flows: int = DEFAULT_MAX_FLOWS) -> None:
        self.enabled = False
        self.capacity = capacity
        self.max_flows = max_flows
        self._reset_state()

    # -- control ------------------------------------------------------------

    def enable(self, capacity: Optional[int] = None,
               max_flows: Optional[int] = None) -> None:
        """Reset and start recording (``capacity`` bounds the ring buffer)."""
        if capacity is not None:
            if capacity < 1:
                raise ValueError("capacity must be >= 1")
            self.capacity = capacity
        if max_flows is not None:
            if max_flows < 1:
                raise ValueError("max_flows must be >= 1")
            self.max_flows = max_flows
        self._reset_state()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._reset_state()

    def _reset_state(self) -> None:
        #: ring of finished events: (ph, t0, dur, pid, lane, name, cat, args)
        self._events: deque = deque(maxlen=self.capacity)
        self.events_recorded = 0
        self.instants_recorded = 0
        self._open: Dict[int, tuple] = {}
        self._next_sid = 1
        self._next_pid = 1
        #: category -> [span count, total sim-seconds]
        self._span_stats: Dict[str, List[float]] = {}
        #: completed + live flow records, insertion order.
        self.flows: List[FlowRecord] = []
        #: (pid, seq) -> live FlowRecord
        self._live: Dict[Tuple[int, int], FlowRecord] = {}
        self._next_rid = 1
        self.flows_dropped = 0

    # -- pid management -----------------------------------------------------

    def _pid(self, sim: Any) -> int:
        """Stable pid for one simulation (assigned on first contact)."""
        pid = getattr(sim, "_trace_pid", None)
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
            sim._trace_pid = pid
        return pid

    # -- spans and instants --------------------------------------------------

    def begin(self, sim: Any, name: str, cat: str = "span",
              lane: str = "main", **args: Any) -> int:
        """Open a span at the simulation's current time; returns its id."""
        sid = self._next_sid
        self._next_sid += 1
        self._open[sid] = (name, cat, lane, self._pid(sim), sim.now, args)
        return sid

    def end(self, sim: Any, sid: int, **args: Any) -> None:
        """Close span ``sid``; the finished span enters the ring buffer."""
        try:
            name, cat, lane, pid, t0, a0 = self._open.pop(sid)
        except KeyError:
            raise ValueError(f"span id {sid} is not open") from None
        if args:
            a0 = {**a0, **args}
        dur = sim.now - t0
        self._events.append(("X", t0, dur, pid, lane, name, cat, a0))
        self.events_recorded += 1
        stat = self._span_stats.get(cat)
        if stat is None:
            self._span_stats[cat] = [1, dur]
        else:
            stat[0] += 1
            stat[1] += dur

    @contextmanager
    def span(self, sim: Any, name: str, cat: str = "span",
             lane: str = "main", **args: Any) -> Iterator[None]:
        """Span around a ``with`` body (single-instant or non-yielding code).

        Generator processes that suspend across events must use explicit
        :meth:`begin`/:meth:`end` instead — a ``with`` block inside a
        generator would still work, but reads as if the span were local.
        """
        sid = self.begin(sim, name, cat=cat, lane=lane, **args)
        try:
            yield
        finally:
            self.end(sim, sid)

    def instant(self, sim: Any, name: str, cat: str = "event",
                lane: str = "main", **args: Any) -> None:
        """Record a point event at the simulation's current time."""
        self._events.append(
            ("i", sim.now, 0.0, self._pid(sim), lane, name, cat, args)
        )
        self.events_recorded += 1
        self.instants_recorded += 1

    @property
    def events_dropped(self) -> int:
        """Events evicted from the ring buffer so far."""
        return self.events_recorded - len(self._events)

    @property
    def open_spans(self) -> int:
        return len(self._open)

    # -- flow lifecycle -------------------------------------------------------

    def flow_created(self, sim: Any, seq: int, src: str, dst: str,
                     size: float, tags: Tuple[str, ...]) -> None:
        if len(self.flows) >= self.max_flows:
            self.flows_dropped += 1
            return
        pid = self._pid(sim)
        rec = FlowRecord(self._next_rid, pid, seq, src, dst, size, tags, sim.now)
        self._next_rid += 1
        self.flows.append(rec)
        self._live[(pid, seq)] = rec

    def flow_rate(self, sim: Any, seq: int, rate: float, bound: str) -> None:
        """Record a rate change with its bound tag (``window/rtt``, ...)."""
        rec = self._live.get((self._pid(sim), seq))
        if rec is not None:
            rec.history.append((sim.now, rate, bound))

    def flow_drained(self, sim: Any, seq: int) -> None:
        rec = self._live.pop((self._pid(sim), seq), None)
        if rec is not None:
            rec.t_end = sim.now

    # -- attribution summaries ------------------------------------------------

    def bound_summary(self) -> Dict[str, Dict[str, float]]:
        """Time-weighted attribution: bound tag -> flow count + sim-seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for rec in self.flows:
            seen: set = set()
            for t0, t1, _rate, bound in rec.timeline():
                entry = out.setdefault(bound, {"flows": 0, "sim_seconds": 0.0})
                entry["sim_seconds"] += t1 - t0
                if bound not in seen:
                    entry["flows"] += 1
                    seen.add(bound)
        return out

    def link_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-link "who saturated me": link name -> flows + bound seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for bound, entry in self.bound_summary().items():
            if bound.startswith("link:"):
                out[bound[len("link:"):]] = entry
        return out

    # -- exporters -------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Plain-dict summary for JSON emission / ``ExperimentResult``.

        Delegates to :func:`repro.obs.export.trace_snapshot` — the one
        serialization path for metrics-shaped artifacts, validated by
        :func:`repro.obs.export.validate_trace_snapshot` in CI.
        """
        from repro.obs.export import trace_snapshot

        return trace_snapshot(self)

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON (object form), loadable in Perfetto.

        Spans are ``"X"`` complete events on per-lane threads; flows are
        async (``"b"``/``"e"``) events whose child slices are named by the
        bound tag active over each attribution segment, so the viewer
        shows *what limited the flow, when* — and the ``"e"`` event's args
        carry the full rate history.
        """
        events: List[dict] = []
        scale = 1e6  # sim seconds -> trace microseconds
        # Lane names become threads: (pid, lane) -> tid + metadata event.
        tids: Dict[Tuple[int, str], int] = {}

        def tid_of(pid: int, lane: str) -> int:
            tid = tids.get((pid, lane))
            if tid is None:
                tid = len(tids) + 1
                tids[(pid, lane)] = tid
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": lane},
                })
            return tid

        for ph, t0, dur, pid, lane, name, cat, args in self._events:
            ev = {
                "ph": ph, "name": name, "cat": cat, "pid": pid,
                "tid": tid_of(pid, lane), "ts": t0 * scale,
            }
            if ph == "X":
                ev["dur"] = dur * scale
            else:
                ev["s"] = "t"
            if args:
                ev["args"] = dict(args)
            events.append(ev)

        for rec in self.flows:
            tid = tid_of(rec.pid, "flows")
            t_end = rec.t_end
            if t_end is None:
                t_end = rec.history[-1][0] if rec.history else rec.t_start
            ident = f"flow-{rec.rid}"
            common = {"cat": "flow", "pid": rec.pid, "tid": tid, "id": ident}
            events.append({
                "ph": "b", "name": f"{rec.src}->{rec.dst}",
                "ts": rec.t_start * scale,
                "args": {"bytes": rec.size, "tags": list(rec.tags)},
                **common,
            })
            for t0, t1, rate, bound in rec.timeline():
                events.append({
                    "ph": "b", "name": bound, "ts": t0 * scale,
                    "args": {"rate_bytes_per_s": rate}, **common,
                })
                events.append({
                    "ph": "e", "name": bound, "ts": t1 * scale, **common,
                })
            events.append({
                "ph": "e", "name": f"{rec.src}->{rec.dst}",
                "ts": t_end * scale,
                "args": {
                    "drained": rec.t_end is not None,
                    "rate_history": [
                        {"t": t, "rate_bytes_per_s": r, "bound": b}
                        for t, r, b in rec.history
                    ],
                },
                **common,
            })

        events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Process-wide default recorder. Library code records into this instance
#: (guarded by ``TRACE.enabled``); harnesses enable/export around a run.
TRACE = Tracer()
