"""Tests for byte-range tokens: interval math and the manager protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tokens import (
    RO,
    RW,
    HeldToken,
    TokenClient,
    TokenManager,
    covers,
    merge_ranges,
)
from repro.net.message import MessageService
from repro.net.topology import Network
from repro.sim import Simulation
from repro.util.units import Gbps


class TestMergeRanges:
    def test_empty(self):
        assert merge_ranges([]) == []

    def test_disjoint_sorted(self):
        assert merge_ranges([(5, 7), (0, 2)]) == [(0, 2), (5, 7)]

    def test_overlap_merged(self):
        assert merge_ranges([(0, 5), (3, 8)]) == [(0, 8)]

    def test_adjacent_merged(self):
        assert merge_ranges([(0, 5), (5, 8)]) == [(0, 8)]

    def test_contained(self):
        assert merge_ranges([(0, 10), (3, 5)]) == [(0, 10)]


class TestCovers:
    def test_exact(self):
        assert covers([(0, 10)], 0, 10)

    def test_inside(self):
        assert covers([(0, 10)], 3, 7)

    def test_gap_fails(self):
        assert not covers([(0, 5), (6, 10)], 0, 10)

    def test_adjacent_pieces_cover(self):
        assert covers([(0, 5), (5, 10)], 0, 10)

    def test_empty_never_covers(self):
        assert not covers([], 0, 1)


@settings(max_examples=150, deadline=None)
@given(
    ranges=st.lists(
        st.tuples(st.integers(0, 100), st.integers(1, 30)).map(
            lambda t: (t[0], t[0] + t[1])
        ),
        max_size=10,
    ),
    probe=st.tuples(st.integers(0, 120), st.integers(1, 20)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
)
def test_covers_matches_pointwise(ranges, probe):
    start, end = probe
    expected = all(
        any(r0 <= x < r1 for r0, r1 in ranges) for x in range(start, end)
    )
    assert covers(ranges, start, end) == expected


class TestHeldToken:
    def test_same_holder_never_conflicts(self):
        t = HeldToken("c0", RW, 0, 10)
        assert not t.conflicts_with("c0", RW, 0, 10)

    def test_ro_ro_share(self):
        t = HeldToken("c0", RO, 0, 10)
        assert not t.conflicts_with("c1", RO, 5, 15)

    def test_rw_conflicts(self):
        t = HeldToken("c0", RW, 0, 10)
        assert t.conflicts_with("c1", RO, 5, 15)
        assert t.conflicts_with("c1", RW, 5, 15)
        ro = HeldToken("c0", RO, 0, 10)
        assert ro.conflicts_with("c1", RW, 5, 15)

    def test_no_overlap_no_conflict(self):
        t = HeldToken("c0", RW, 0, 10)
        assert not t.conflicts_with("c1", RW, 10, 20)


def manager_fixture():
    sim = Simulation()
    net = Network()
    net.add_node("sw", kind="switch")
    for n in ["mgr", "c0", "c1", "writer"]:
        net.add_host(n, "sw", Gbps(1), nic_delay=0.005)
    msgs = MessageService(sim, net)
    tm = TokenManager(sim, msgs, "mgr")
    return sim, tm


def noop_handler(ino, lo, hi):
    yield from ()


class TestTokenManager:
    def test_acquire_grants(self):
        sim, tm = manager_fixture()
        tm.register_client("c0", noop_handler)
        evt = tm.acquire("c0", ino=1, start=0, end=100, mode=RW)
        sim.run(until=evt)
        assert tm.grants == 1
        assert tm.client_ranges(1, "c0") == [(0, 100)]
        # Acquisition paid two one-way messages (~10ms at 5ms NIC delay each way)
        assert sim.now >= 0.02

    def test_unregistered_client_rejected(self):
        _, tm = manager_fixture()
        with pytest.raises(KeyError):
            tm.acquire("ghost", 1, 0, 10, RW)

    def test_validation(self):
        _, tm = manager_fixture()
        tm.register_client("c0", noop_handler)
        with pytest.raises(ValueError):
            tm.acquire("c0", 1, 0, 10, "exclusive")
        with pytest.raises(ValueError):
            tm.acquire("c0", 1, 10, 10, RW)

    def test_conflicting_acquire_revokes(self):
        sim, tm = manager_fixture()
        flushed = []

        def handler(ino, lo, hi):
            flushed.append((ino, lo, hi))
            yield sim.timeout(0.1)  # flush takes time

        tm.register_client("c0", handler)
        tm.register_client("c1", noop_handler)
        sim.run(until=tm.acquire("c0", 1, 0, 100, RW))
        t0 = sim.now
        sim.run(until=tm.acquire("c1", 1, 50, 150, RW))
        assert flushed == [(1, 50, 100)]  # only the overlap is flushed
        assert sim.now - t0 > 0.1  # paid the revoke round trip + flush
        assert tm.revokes == 1
        # c0 keeps the non-overlapping prefix
        assert tm.client_ranges(1, "c0") == [(0, 50)]
        assert tm.client_ranges(1, "c1") == [(50, 150)]

    def test_ro_holders_share(self):
        sim, tm = manager_fixture()
        tm.register_client("c0", noop_handler)
        tm.register_client("c1", noop_handler)
        sim.run(until=tm.acquire("c0", 1, 0, 100, RO))
        sim.run(until=tm.acquire("c1", 1, 0, 100, RO))
        assert tm.revokes == 0

    def test_rw_revokes_all_readers(self):
        sim, tm = manager_fixture()
        for c in ["c0", "c1"]:
            tm.register_client(c, noop_handler)
        tm.register_client("writer", noop_handler)
        sim.run(until=tm.acquire("c0", 1, 0, 100, RO))
        sim.run(until=tm.acquire("c1", 1, 0, 100, RO))
        sim.run(until=tm.acquire("writer", 1, 0, 100, RW))
        assert tm.revokes == 2

    def test_release_all(self):
        sim, tm = manager_fixture()
        tm.register_client("c0", noop_handler)
        sim.run(until=tm.acquire("c0", 1, 0, 100, RW))
        sim.run(until=tm.acquire("c0", 2, 0, 100, RW))
        tm.release_all("c0", ino=1)
        assert tm.client_ranges(1, "c0") == []
        assert tm.client_ranges(2, "c0") == [(0, 100)]
        tm.release_all("c0")
        assert tm.client_ranges(2, "c0") == []


class TestTokenClient:
    def test_caching_avoids_traffic(self):
        sim, tm = manager_fixture()
        tc = TokenClient(tm, "c0", noop_handler)
        sim.run(until=tc.ensure(1, 0, 100, RW))
        assert tc.acquisitions == 1
        t_after_first = sim.now
        sim.run(until=tc.ensure(1, 20, 80, RW))  # covered: instant
        assert tc.acquisitions == 1
        assert tc.cache_hits == 1
        assert sim.now == t_after_first

    def test_rw_token_satisfies_ro(self):
        sim, tm = manager_fixture()
        tc = TokenClient(tm, "c0", noop_handler)
        sim.run(until=tc.ensure(1, 0, 100, RW))
        assert tc.has(1, 0, 100, RO)

    def test_ro_token_does_not_satisfy_rw(self):
        sim, tm = manager_fixture()
        tc = TokenClient(tm, "c0", noop_handler)
        sim.run(until=tc.ensure(1, 0, 100, RO))
        assert not tc.has(1, 0, 100, RW)
        sim.run(until=tc.ensure(1, 0, 100, RW))
        assert tc.acquisitions == 2
