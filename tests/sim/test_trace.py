"""Tests for the simulation-clock flight recorder (`repro.sim.trace`)."""

import json

import pytest

from repro.sim import Simulation
from repro.sim.trace import Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestSpans:
    def test_span_records_sim_time_and_duration(self, tracer):
        sim = Simulation()

        def proc(sim):
            sid = tracer.begin(sim, "io", cat="storage", lane="disk0")
            yield sim.timeout(2.5)
            tracer.end(sim, sid)

        sim.process(proc(sim))
        sim.run()
        (ph, t0, dur, _pid, lane, name, cat, _args) = tracer._events[0]
        assert (ph, name, cat, lane) == ("X", "io", "storage", "disk0")
        assert t0 == 0.0 and dur == pytest.approx(2.5)

    def test_nested_spans_close_in_order(self, tracer):
        sim = Simulation()

        def proc(sim):
            outer = tracer.begin(sim, "outer")
            yield sim.timeout(1.0)
            inner = tracer.begin(sim, "inner")
            yield sim.timeout(1.0)
            tracer.end(sim, inner)
            yield sim.timeout(1.0)
            tracer.end(sim, outer)

        sim.process(proc(sim))
        sim.run()
        # Inner finishes first (enters the ring first) and nests strictly
        # inside the outer span's [t0, t0+dur) window.
        names = [e[5] for e in tracer._events]
        assert names == ["inner", "outer"]
        inner, outer = tracer._events
        assert outer[1] <= inner[1]
        assert inner[1] + inner[2] <= outer[1] + outer[2]
        assert tracer.open_spans == 0

    def test_span_context_manager(self, tracer):
        sim = Simulation()
        with tracer.span(sim, "setup", cat="harness"):
            pass
        assert tracer.events_recorded == 1

    def test_end_unknown_span_raises(self, tracer):
        with pytest.raises(ValueError):
            tracer.end(Simulation(), 999)

    def test_instant_event(self, tracer):
        sim = Simulation()
        tracer.instant(sim, "marker", detail=42)
        assert tracer.instants_recorded == 1

    def test_end_merges_args(self, tracer):
        sim = Simulation()
        sid = tracer.begin(sim, "op", bytes=10)
        tracer.end(sim, sid, status="ok")
        args = tracer._events[0][7]
        assert args == {"bytes": 10, "status": "ok"}


class TestRingBuffer:
    def test_eviction_is_bounded_and_counted(self):
        t = Tracer()
        t.enable(capacity=8)
        sim = Simulation()
        for i in range(20):
            t.instant(sim, f"e{i}")
        assert len(t._events) == 8
        assert t.events_recorded == 20
        assert t.events_dropped == 12
        # Oldest evicted first: the survivors are the last 8.
        assert t._events[0][5] == "e12"

    def test_enable_resets_state(self):
        t = Tracer()
        t.enable()
        t.instant(Simulation(), "x")
        t.enable()
        assert t.events_recorded == 0 and len(t._events) == 0


class TestDisabledZeroOverhead:
    def test_disabled_tracer_records_nothing(self):
        """Smoke test: a run with TRACE off must leave no recorder state.

        The hot-path contract is one `TRACE.enabled` attribute check per
        site; nothing below this module's API may run when disabled.
        """
        from repro.net import FlowEngine, Network, TcpModel
        from repro.sim.trace import TRACE
        from repro.util.units import Gbps, MB

        assert not TRACE.enabled
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", Gbps(1))
        sim = Simulation()
        eng = FlowEngine(sim, net, default_tcp=TcpModel(window=MB(64)))
        evts = [eng.transfer("a", "b", MB(10)) for _ in range(20)]
        sim.run(until=sim.all_of(evts))
        assert TRACE.events_recorded == 0
        assert not TRACE.flows
        # cap_kind is only computed under tracing.
        assert eng.completed_flows == 20

    def test_disabled_sim_gets_no_pid(self):
        sim = Simulation()
        assert not hasattr(sim, "_trace_pid")


class TestFlowRecords:
    def test_lifecycle_and_timeline(self, tracer):
        sim = Simulation()
        tracer.flow_created(sim, 0, "a", "b", 100.0, ("wan",))
        tracer.flow_rate(sim, 0, 10.0, "window/rtt")
        sim.run(until=sim.timeout(4.0))
        tracer.flow_rate(sim, 0, 5.0, "link:a->b")
        sim.run(until=sim.timeout(6.0))
        tracer.flow_drained(sim, 0)
        (rec,) = tracer.flows
        assert rec.t_end == 10.0
        assert rec.timeline() == [
            (0.0, 4.0, 10.0, "window/rtt"),
            (4.0, 10.0, 5.0, "link:a->b"),
        ]

    def test_flow_cap_counts_drops(self):
        t = Tracer()
        t.enable(max_flows=2)
        sim = Simulation()
        for i in range(5):
            t.flow_created(sim, i, "a", "b", 1.0, ())
        assert len(t.flows) == 2 and t.flows_dropped == 3

    def test_bound_summary_time_weighted(self, tracer):
        sim = Simulation()
        tracer.flow_created(sim, 0, "a", "b", 1.0, ())
        tracer.flow_rate(sim, 0, 1.0, "window/rtt")
        sim.run(until=sim.timeout(3.0))
        tracer.flow_drained(sim, 0)
        summary = tracer.bound_summary()
        assert summary["window/rtt"] == {"flows": 1, "sim_seconds": 3.0}

    def test_link_summary_extracts_link_bounds(self, tracer):
        sim = Simulation()
        tracer.flow_created(sim, 0, "a", "b", 1.0, ())
        tracer.flow_rate(sim, 0, 1.0, "link:a->sw")
        sim.run(until=sim.timeout(2.0))
        tracer.flow_drained(sim, 0)
        assert tracer.link_summary() == {
            "a->sw": {"flows": 1, "sim_seconds": 2.0}
        }

    def test_separate_sims_do_not_collide(self, tracer):
        # Two sims reuse flow seq 0; records must stay distinct per pid.
        for _ in range(2):
            sim = Simulation()
            tracer.flow_created(sim, 0, "a", "b", 1.0, ())
            tracer.flow_drained(sim, 0)
        assert len(tracer.flows) == 2
        assert tracer.flows[0].pid != tracer.flows[1].pid


class TestExport:
    def test_chrome_trace_is_valid_json_with_required_fields(self, tracer):
        sim = Simulation()
        with tracer.span(sim, "op", cat="storage", lane="disk0", bytes=7):
            pass
        tracer.flow_created(sim, 0, "a", "b", 10.0, ("wan",))
        tracer.flow_rate(sim, 0, 5.0, "window/rtt")
        tracer.flow_drained(sim, 0)
        doc = json.loads(json.dumps(tracer.to_chrome()))
        events = doc["traceEvents"]
        assert events, "exporter produced no events"
        for ev in events:
            assert {"ph", "name", "pid", "tid"} <= set(ev)
            if ev["ph"] != "M":
                assert "ts" in ev
        xs = [e for e in events if e["ph"] == "X"]
        assert xs and xs[0]["dur"] == 0.0
        flow_bounds = [
            e["name"] for e in events
            if e.get("cat") == "flow" and e["ph"] == "b"
        ]
        assert "window/rtt" in flow_bounds

    def test_thread_metadata_names_lanes(self, tracer):
        sim = Simulation()
        with tracer.span(sim, "op", lane="nsd:server3"):
            pass
        meta = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "M"]
        assert any(m["args"]["name"] == "nsd:server3" for m in meta)

    def test_metrics_snapshot_shape(self, tracer):
        sim = Simulation()
        with tracer.span(sim, "op", cat="storage"):
            pass
        snap = tracer.metrics_snapshot()
        assert snap["events"]["recorded"] == 1
        assert snap["spans_by_category"]["storage"]["count"] == 1
        assert set(snap) == {
            "events", "spans_by_category", "flows", "bounds", "links"
        }
        json.dumps(snap)  # must be JSON-serializable as-is
