"""Process-wide metrics registry and the :data:`OBS` singleton.

Mirrors the ``PROFILE``/``TRACE`` pattern (`repro.sim.profile`,
`repro.sim.trace`): one module-level singleton, disabled by default, and
every hot call site guards with ``if OBS.enabled: ...`` so the disabled
cost is a single attribute check.

Metrics are keyed canonically as ``name`` or ``name{k=v,...}`` with
sorted labels (see :func:`repro.obs.metrics.canonical_key`). A metric
*family* (the name before the label braces) has exactly one kind —
registering ``foo`` as a counter and ``foo{op=read}`` as a histogram is
an error caught at registration time, not at export time.

Besides stored metrics, the registry accepts **callbacks**: zero-cost
reads of state the subsystems already maintain (kernel heap depth,
flow-engine counters, link utilization). Callbacks are only invoked at
scrape time, so instrumenting the kernel costs nothing per event.

Scrapes are rows of ``{"t": sim.now, "counters": ..., "gauges": ...,
"histograms": ...}`` accumulated in ``registry.rows`` and serialized by
:mod:`repro.obs.export`. Nothing here reads a wall clock; two runs with
the same seed scrape bit-identical rows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    canonical_key,
)

SCHEMA = "repro.metrics/v1"


def _pid(sim) -> int:
    """Stable small integer for a Simulation (mirrors trace._pid)."""
    pid = getattr(sim, "_obs_pid", None)
    if pid is None:
        pid = _pid.counter = getattr(_pid, "counter", 0) + 1
        sim._obs_pid = pid
    return pid


class MetricsRegistry:
    """Holds every metric and produces deterministic scrape rows."""

    def __init__(self) -> None:
        self.enabled = False
        self.scrape_interval = 0.25
        self._metrics: Dict[str, object] = {}
        self._kinds: Dict[str, str] = {}
        self._callbacks: Dict[str, Tuple[Callable[[], float], str]] = {}
        self._multi_callbacks: List[Callable[[], dict]] = []
        self.rows: List[dict] = []
        self.meta: Dict[str, object] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all metrics, callbacks, and scrape rows (keep enabled flag).

        Experiments call this between runs so callbacks bound to a dead
        simulation can't leak into the next one's scrapes. The sim-id
        counter rewinds too: every run numbers its simulations from 1,
        so in-process back-to-back runs export the same bytes a fresh
        process would (the bit-identity contract).
        """
        self._metrics.clear()
        self._kinds.clear()
        self._callbacks.clear()
        self._multi_callbacks.clear()
        self.rows.clear()
        self.meta.clear()
        _pid.counter = 0

    # -- registration ------------------------------------------------------

    def _check_kind(self, name: str, kind: str) -> None:
        prev = self._kinds.get(name)
        if prev is None:
            self._kinds[name] = kind
        elif prev != kind:
            raise MetricError(
                f"metric family {name!r} already registered as {prev}, "
                f"cannot re-register as {kind}"
            )

    def counter(self, name: str, **labels: str) -> Counter:
        # Kind is checked even on lookup: counter("m") after gauge("m")
        # must raise, never hand back the wrong type.
        self._check_kind(name, "counter")
        key = canonical_key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = self._metrics[key] = Counter(name=key)
        return m

    def gauge(self, name: str, **labels: str) -> Gauge:
        self._check_kind(name, "gauge")
        key = canonical_key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = self._metrics[key] = Gauge(name=key)
        return m

    def histogram(self, name: str, **labels: str) -> Histogram:
        self._check_kind(name, "histogram")
        key = canonical_key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = self._metrics[key] = Histogram(name=key)
        return m

    def register_callback(
        self,
        name: str,
        fn: Callable[[], float],
        kind: str = "gauge",
        **labels: str,
    ) -> None:
        """Register a scrape-time read of existing state.

        ``kind`` is ``"gauge"`` (instantaneous) or ``"counter"``
        (cumulative, still read via ``fn``). Registering the same key
        twice is an error — it would silently shadow a subsystem.
        """
        if kind not in ("gauge", "counter"):
            raise MetricError(f"callback kind must be gauge|counter, got {kind!r}")
        key = canonical_key(name, labels)
        if key in self._callbacks or key in self._metrics:
            raise MetricError(f"metric {key!r} already registered")
        self._check_kind(name, kind)
        self._callbacks[key] = (fn, kind)

    def register_multi(self, fn: Callable[[], dict]) -> None:
        """Register a callback returning many values at once.

        ``fn()`` returns ``{"counters": {key: value}, "gauges": {key:
        value}}`` with already-canonical keys. Useful for dict-shaped
        state like per-link utilization where the key set varies between
        scrapes. Later registrations win on key collisions (documented
        so: multi callbacks are for namespaces a single subsystem owns).
        """
        self._multi_callbacks.append(fn)

    # -- hot-path conveniences --------------------------------------------
    # Call sites guard with `if OBS.enabled:` and then use these directly.

    def inc(self, name: str, n: float = 1.0, **labels: str) -> None:
        self.counter(name, **labels).inc(n)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, t: float, **labels: str) -> None:
        self.gauge(name, **labels).set(value, t)

    # -- scraping ----------------------------------------------------------

    def scrape(self, sim) -> dict:
        """Snapshot every metric at ``sim.now`` and append a row."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for key, m in self._metrics.items():
            if isinstance(m, Counter):
                counters[key] = m.value
            elif isinstance(m, Gauge):
                if m.samples:
                    gauges[key] = m.samples[-1][1]
            elif isinstance(m, Histogram):
                if m.count:
                    histograms[key] = m.to_dict()
        for key, (fn, kind) in self._callbacks.items():
            (counters if kind == "counter" else gauges)[key] = float(fn())
        for fn in self._multi_callbacks:
            out = fn()
            for key, v in out.get("counters", {}).items():
                counters[key] = float(v)
            for key, v in out.get("gauges", {}).items():
                gauges[key] = float(v)
        row = {
            "schema": SCHEMA,
            "kind": "scrape",
            "t": sim.now,
            "sim": _pid(sim),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        self.rows.append(row)
        return row

    def last_row(self) -> Optional[dict]:
        return self.rows[-1] if self.rows else None


#: The process-wide registry. Disabled by default; ``repro report
#: --metrics-dir`` and experiment wiring enable it.
OBS = MetricsRegistry()
