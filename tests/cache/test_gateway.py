"""Integration tests: the caching gateway between an edge site and home.

The testbed is the two-cluster WAN topology from the multicluster tests
(sdsc serving, ncsa importing) with gateway nodes added at the ncsa edge;
clients mount the remote filesystem *through* the gateway.
"""

import pytest

from repro.cache import CacheGateway, GatewayBlockCache, GatewayMount
from repro.core.multicluster import MountAuthError
from repro.core.tokens import RW
from repro.faults.partition import PartitionState
from repro.util.units import Gbps

from tests.core.test_multicluster import patterned, wan_gfs
from tests.core.testbed import run_io


def gateway_gfs(
    mode="writeback",
    cache_blocks=64,
    wan_delay=0.015,
    lease_duration=30.0,
    gw_nodes=1,
    **gw_kwargs,
):
    """wan_gfs plus a gateway cluster at the ncsa edge."""
    g, sdsc, ncsa, fs = wan_gfs(wan_delay=wan_delay)
    names = [f"gw{i}" for i in range(gw_nodes)]
    for name in names:
        g.network.add_host(name, "ncsa-sw", Gbps(1), site="ncsa")
    ncsa.add_nodes(names)
    cache = GatewayBlockCache(
        cache_blocks * fs.block_size, fs.block_size, store_data=fs.store_data
    )
    gw = CacheGateway(
        fs, names, cache, mode=mode, lease_duration=lease_duration, **gw_kwargs
    )
    return g, sdsc, ncsa, fs, gw


def edge_mount(g, ncsa, gw, node="n0", **kw):
    return g.run(until=ncsa.mmmount("gpfs-sdsc-remote", node, gateway=gw, **kw))


def home_write(g, sdsc, path, payload, node="s3"):
    m = g.run(until=sdsc.mmmount("gpfs-sdsc", node))

    def io():
        h = yield m.open(path, "w", create=True)
        yield m.write(h, payload)
        yield m.close(h)

    run_io(g, io())
    return m


def read_all(g, mount, path, length):
    def io():
        h = yield mount.open(path, "r")
        data = yield mount.read(h, length)
        yield mount.close(h)
        return data

    return run_io(g, io())


class TestGatewayMountProtocol:
    def test_mount_through_gateway(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs()
        mount = edge_mount(g, ncsa, gw)
        assert isinstance(mount, GatewayMount)
        assert mount.fs is fs
        assert mount.gateway is gw
        assert "n0" in gw.local_nodes
        assert sdsc.active_remote_mounts == 1

    def test_plain_remote_mount_unchanged(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs()
        mount = g.run(until=ncsa.mmmount("gpfs-sdsc-remote", "n0"))
        assert not isinstance(mount, GatewayMount)

    def test_gateway_for_other_filesystem_rejected(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs()
        other_g, _sdsc2, _ncsa2, other_fs = wan_gfs()
        cache = GatewayBlockCache(
            4 * other_fs.block_size, other_fs.block_size
        )
        foreign = CacheGateway(other_fs, ["gx0"], cache)
        evt = ncsa.mmmount("gpfs-sdsc-remote", "n1", gateway=foreign)
        with pytest.raises(MountAuthError, match="caches"):
            g.run(until=evt)


class TestReadPath:
    def test_cold_read_matches_direct_data(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs()
        payload = patterned(3 * fs.block_size)
        home_write(g, sdsc, "/dataset", payload)
        m = edge_mount(g, ncsa, gw)
        assert read_all(g, m, "/dataset", len(payload)) == payload
        assert gw.origin_bytes == 3 * fs.block_size
        assert len(gw.cache) == 3
        assert gw.cache.misses >= 3

    def test_warm_hit_serves_without_wan_traffic(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs()
        payload = patterned(3 * fs.block_size)
        home_write(g, sdsc, "/dataset", payload)
        m0 = edge_mount(g, ncsa, gw, "n0")

        t0 = g.sim.now
        assert read_all(g, m0, "/dataset", len(payload)) == payload
        cold_elapsed = g.sim.now - t0
        origin_after_cold = gw.origin_bytes

        # A second client's page pool is cold but the gateway is warm.
        m1 = edge_mount(g, ncsa, gw, "n1")
        t0 = g.sim.now
        assert read_all(g, m1, "/dataset", len(payload)) == payload
        warm_elapsed = g.sim.now - t0

        assert gw.origin_bytes == origin_after_cold  # zero new WAN bytes
        assert gw.cache.hits >= 3
        assert warm_elapsed < cold_elapsed
        assert gw.origin_offload > 0.0

    def test_concurrent_misses_fetch_once(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs()
        payload = patterned(fs.block_size)
        home_write(g, sdsc, "/shared", payload)
        m0 = edge_mount(g, ncsa, gw, "n0")
        m1 = edge_mount(g, ncsa, gw, "n1")

        def io():
            h0 = yield m0.open("/shared", "r")
            h1 = yield m1.open("/shared", "r")
            reads = [m0.read(h0, fs.block_size), m1.read(h1, fs.block_size)]
            yield g.sim.all_of(reads)
            return [evt.value for evt in reads]

        datas = run_io(g, io())
        assert datas == [payload, payload]
        assert gw.origin_bytes == fs.block_size  # one WAN fetch, two readers


class TestWritePath:
    def test_writeback_close_is_durable_at_home(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(mode="writeback")
        m = edge_mount(g, ncsa, gw)
        payload = patterned(2 * fs.block_size, seed=11)

        def io():
            h = yield m.open("/out", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)

        run_io(g, io())
        assert gw.write_acks >= 2
        assert gw.writes_flushed == gw.write_acks
        assert gw.dirty_queue_depth == 0
        assert gw.cache.dirty_blocks == 0
        m_home = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3"))
        assert read_all(g, m_home, "/out", len(payload)) == payload

    def test_writethrough_pays_wan_before_ack(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(mode="writethrough")
        m = edge_mount(g, ncsa, gw)
        payload = patterned(fs.block_size, seed=12)

        def io():
            h = yield m.open("/out", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)

        run_io(g, io())
        assert gw.writes_through >= 1
        assert gw.writes_flushed == 0
        assert gw.cache.dirty_blocks == 0
        m_home = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3"))
        assert read_all(g, m_home, "/out", len(payload)) == payload

    def test_writeback_ack_precedes_home_flush(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(mode="writeback")
        m = edge_mount(g, ncsa, gw)
        seed_payload = patterned(fs.block_size, seed=13)

        def setup():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, seed_payload)
            yield m.close(h)

        run_io(g, setup())
        inode = fs.namespace.resolve("/f")
        nsd_id, phys = fs.lookup_block(inode, 0)
        acks_before = gw.write_acks
        flushed_before = gw.writes_flushed
        new_payload = patterned(fs.block_size, seed=14)

        def io():
            yield gw.write_block("n0", inode, 0, nsd_id, phys, 0, new_payload)
            # Ack arrived; the WAN flush (>= one 15 ms RTT away) has not.
            flushed_at_ack = gw.writes_flushed
            yield g.sim.timeout(1.0)
            return flushed_at_ack

        flushed_at_ack = run_io(g, io())
        assert gw.write_acks == acks_before + 1
        assert flushed_at_ack == flushed_before
        assert gw.writes_flushed == flushed_before + 1
        m_home = g.run(until=sdsc.mmmount("gpfs-sdsc", "s3"))
        assert read_all(g, m_home, "/f", len(new_payload)) == new_payload


class TestLeases:
    def test_foreign_write_breaks_live_lease(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(lease_duration=60.0)
        v1 = patterned(fs.block_size, seed=1)
        m_home = home_write(g, sdsc, "/f", v1)
        m = edge_mount(g, ncsa, gw)
        assert read_all(g, m, "/f", len(v1)) == v1
        assert len(gw.cache) == 1

        v2 = patterned(fs.block_size, seed=2)

        def overwrite():
            h = yield m_home.open("/f", "r+")
            yield m_home.pwrite(h, 0, v2)
            yield m_home.close(h)
            yield g.sim.timeout(0.1)  # let the invalidation push land

        run_io(g, overwrite())
        assert gw.lease_breaks >= 1
        assert read_all(g, m, "/f", len(v2)) == v2

    def test_expired_lease_revalidates_and_drops_stale(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(lease_duration=0.02)
        v1 = patterned(fs.block_size, seed=1)
        m_home = home_write(g, sdsc, "/f", v1)
        m = edge_mount(g, ncsa, gw)
        assert read_all(g, m, "/f", len(v1)) == v1

        v2 = patterned(fs.block_size, seed=2)

        def overwrite():
            yield g.sim.timeout(0.05)  # lease expires: no push possible
            h = yield m_home.open("/f", "r+")
            yield m_home.pwrite(h, 0, v2)
            yield m_home.close(h)

        run_io(g, overwrite())
        assert gw.lease_breaks == 0
        assert read_all(g, m, "/f", len(v2)) == v2
        assert gw.stale_invalidations >= 1
        assert gw.lease_renewals >= 2


def sever_wan(g, fs, gw):
    """Manually wire a PartitionState (what attach_faults does for E13)."""
    part = PartitionState(g.sim)
    fs.service.attach_partition(part)
    fs.messages.attach_partition(part)
    gw.attach_partition(part)
    return part


class TestPartition:
    def test_stale_reads_and_replay_on_heal(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(lease_duration=120.0)
        payload = patterned(2 * fs.block_size, seed=1)
        m_home = home_write(g, sdsc, "/f", payload)
        m = edge_mount(g, ncsa, gw)
        assert read_all(g, m, "/f", len(payload)) == payload
        part = sever_wan(g, fs, gw)
        inode = fs.namespace.resolve("/f")
        nsd_id, phys = fs.lookup_block(inode, 0)
        new_block = patterned(fs.block_size, seed=2)
        bs = fs.block_size

        def io():
            part.begin({"n0", "n1", "gw0"})
            # Read within the live lease: served from cache, no WAN.
            t0 = g.sim.now
            data = yield gw.read_block("n0", inode, 0, (nsd_id, phys))
            assert data == payload[:bs]
            assert g.sim.now - t0 < 0.010  # far below one WAN RTT
            assert gw.stale_hits >= 1
            # Writeback write: acked locally while the WAN is down.
            yield gw.write_block("n0", inode, 0, nsd_id, phys, 0, new_block)
            assert part.active
            acked_during_cut = gw.write_acks
            flushed_during_cut = gw.writes_flushed
            yield g.sim.timeout(0.5)
            assert gw.writes_flushed == flushed_during_cut  # still parked
            part.heal()
            yield g.sim.timeout(1.0)
            return acked_during_cut, flushed_during_cut

        acked, flushed_before = run_io(g, io())
        assert acked == flushed_before + 1
        assert gw.writes_flushed == acked  # replayed after heal, none lost
        assert gw.dirty_queue_depth == 0
        assert gw.conflicts == 0
        assert read_all(g, m_home, "/f", bs) == new_block

    def test_foreign_grant_during_cut_counts_conflict(self):
        g, sdsc, ncsa, fs, gw = gateway_gfs(lease_duration=120.0)
        payload = patterned(fs.block_size, seed=1)
        home_write(g, sdsc, "/f", payload)
        m = edge_mount(g, ncsa, gw)
        assert read_all(g, m, "/f", len(payload)) == payload  # lease live
        part = sever_wan(g, fs, gw)
        inode = fs.namespace.resolve("/f")
        nsd_id, phys = fs.lookup_block(inode, 0)
        wa = patterned(fs.block_size, seed=2)
        wb = patterned(fs.block_size, seed=3)

        def io():
            part.begin({"n0", "n1", "gw0"})
            # Two queued writes: the flusher parks mid-flight on the
            # first, the second is still queued when the cut heals.
            yield gw.write_block("n0", inode, 0, nsd_id, phys, 0, wa)
            yield gw.write_block("n0", inode, 0, nsd_id, phys, 0, wb)
            # A home-side client is granted rw during the cut (its token
            # path is WAN-free): the lease version advances under us.
            fs.token_manager.on_grant("s3", inode.ino, RW, 0, None)
            yield g.sim.timeout(0.2)
            part.heal()
            yield g.sim.timeout(1.0)

        run_io(g, io())
        assert gw.conflicts == 1  # detected, counted, last-writer-wins
        assert gw.writes_flushed == gw.write_acks
        assert gw.dirty_queue_depth == 0
        assert gw.lease_breaks >= 1  # parked push delivered at heal
