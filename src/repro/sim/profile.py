"""Lightweight simulator self-profiling: named counters and wall timers.

The flow engine and fair-share solver are the simulator's hot path; this
module gives them (and anything else) near-zero-cost counters so a run can
report *how much solver work it did* — solves, solved flow rows, matrix
rebuilds, kernel events — instead of asserting speedups blind.

Disabled by default: ``count()`` is a single attribute check when off, so
instrumentation can live permanently in hot loops. Enable around a region::

    from repro.sim.profile import PROFILE

    PROFILE.reset()
    PROFILE.enable()
    ...  # run the simulation
    PROFILE.disable()
    print(PROFILE.report())

``python -m repro report --profile`` wraps a whole report run this way.

Counter namespaces in use:

* ``kernel.events`` — events popped off the simulation heap;
* ``kernel.timeout_pool_hits`` — zero-delay timeouts served from the
  kernel's recycling pool instead of a fresh allocation;
* ``kernel.guard_fastpath`` — NSD RPC legs that early-outed of the
  partition/health guard (no faults active) without building the
  generator machinery;
* ``flowengine.recomputes`` / ``flowengine.active_rows`` /
  ``flowengine.rate_changes`` — recompute passes, active flows seen by
  them (what a full re-solve would have touched), flows whose rate
  actually changed;
* ``fairshare.solves`` / ``fairshare.solved_rows`` — per-component
  water-filling solves and the flow rows they touched;
* ``fairshare.single_flow_solves`` — dirty components of exactly one
  flow resolved by the closed-form shortcut (no matrix work);
* ``fairshare.matrix_growths`` / ``fairshare.partition_rebuilds`` —
  incidence-state maintenance events;
* ``nsd.coalesced_rpcs`` / ``nsd.coalesced_blocks`` — scatter-gather
  multi-block RPCs issued and the blocks they carried; their ratio is
  the realized coalescing factor (zero unless a mount sets
  ``max_coalesce > 1``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class Profile:
    """A named bundle of counters and accumulated wall-clock timers."""

    __slots__ = ("enabled", "counters", "timers", "_timed_depth")

    def __init__(self) -> None:
        self.enabled = False
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        # Re-entrancy depth per timer name: only the outermost timed("x")
        # accumulates, so nesting cannot double-count wall time.
        self._timed_depth: Dict[str, int] = {}

    # -- control ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self._timed_depth.clear()

    # -- recording ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Accumulate wall time of the ``with`` body into timer ``name``.

        Re-entrant: a nested ``timed("x")`` inside an open ``timed("x")``
        is a no-op, so recursive call sites count their wall time once.
        """
        if not self.enabled:
            yield
            return
        depth = self._timed_depth.get(name, 0)
        self._timed_depth[name] = depth + 1
        t0 = time.perf_counter() if depth == 0 else 0.0
        try:
            yield
        finally:
            # pop-with-default keeps a reset() inside the span harmless.
            remaining = self._timed_depth.pop(name, 1) - 1
            if remaining > 0:
                self._timed_depth[name] = remaining
            else:
                self.timers[name] = (
                    self.timers.get(name, 0.0) + time.perf_counter() - t0
                )

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict copy (for JSON emission / assertions).

        Delegates to :func:`repro.obs.export.profile_snapshot` so
        ``report --profile-json`` output follows the same schema the CI
        validators (:func:`repro.obs.export.validate_profile_snapshot`)
        check.
        """
        from repro.obs.export import profile_snapshot

        return profile_snapshot(self)

    def report(self) -> str:
        """Human-readable table of all counters and timers."""
        lines = ["-- profile --"]
        if not self.counters and not self.timers:
            lines.append("(nothing recorded — was profiling enabled?)")
        for name in sorted(self.counters):
            lines.append(f"  {name:<32} {self.counters[name]:>14,}")
        for name in sorted(self.timers):
            lines.append(f"  {name:<32} {self.timers[name]:>13.3f}s")
        return "\n".join(lines)


#: Process-wide default profile. Library code records into this instance;
#: harnesses enable/reset it around the region they care about.
PROFILE = Profile()
