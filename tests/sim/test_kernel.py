"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    Interrupt,
    Simulation,
    SimulationError,
)


class TestClockAndTimeout:
    def test_time_starts_at_zero(self):
        assert Simulation().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(3.5)

        sim.process(proc(sim))
        sim.run()
        assert sim.now == 3.5

    def test_timeout_value(self):
        sim = Simulation()

        def proc(sim):
            got = yield sim.timeout(1.0, value="hello")
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "hello"

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until_time(self):
        sim = Simulation()

        def proc(sim):
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run(until=4.5)
        assert sim.now == 4.5

    def test_run_until_past_raises(self):
        sim = Simulation()
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_events_at_same_time_fire_in_creation_order(self):
        sim = Simulation()
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_peek(self):
        sim = Simulation()
        assert sim.peek() == float("inf")
        sim.timeout(2.0)
        assert sim.peek() == 2.0


class TestEvents:
    def test_succeed_and_value(self):
        sim = Simulation()
        evt = sim.event()
        evt.succeed(42)
        sim.run()
        assert evt.ok and evt.value == 42 and evt.processed

    def test_double_trigger_raises(self):
        sim = Simulation()
        evt = sim.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_value_before_trigger_raises(self):
        sim = Simulation()
        evt = sim.event()
        with pytest.raises(SimulationError):
            _ = evt.value
        with pytest.raises(SimulationError):
            _ = evt.ok

    def test_fail_requires_exception(self):
        sim = Simulation()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_propagates(self):
        sim = Simulation()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_handled_failure_thrown_into_process(self):
        sim = Simulation()
        evt = sim.event()

        def proc(sim):
            try:
                yield evt
            except RuntimeError as exc:
                return f"caught {exc}"

        p = sim.process(proc(sim))
        evt.fail(RuntimeError("bad"))
        sim.run()
        assert p.value == "caught bad"


class TestProcess:
    def test_return_value(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(1)
            return 99

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 99

    def test_process_composes_as_event(self):
        sim = Simulation()

        def child(sim):
            yield sim.timeout(2.0)
            return "child-done"

        def parent(sim):
            result = yield sim.process(child(sim))
            return result

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "child-done"
        assert sim.now == 2.0

    def test_waiting_on_already_finished_process(self):
        sim = Simulation()

        def child(sim):
            yield sim.timeout(1.0)
            return 7

        c = sim.process(child(sim))

        def parent(sim):
            yield sim.timeout(5.0)
            v = yield c  # c finished long ago
            return v

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 7
        assert sim.now == 5.0

    def test_exception_in_process_propagates_when_unwaited(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(1)
            raise ValueError("kaput")

        sim.process(proc(sim))
        with pytest.raises(ValueError, match="kaput"):
            sim.run()

    def test_exception_observable_by_waiter(self):
        sim = Simulation()

        def bad(sim):
            yield sim.timeout(1)
            raise ValueError("inner")

        def waiter(sim):
            try:
                yield sim.process(bad(sim))
            except ValueError:
                return "observed"

        w = sim.process(waiter(sim))
        sim.run()
        assert w.value == "observed"

    def test_yield_non_event_raises(self):
        sim = Simulation()

        def proc(sim):
            yield 42

        sim.process(proc(sim))
        with pytest.raises(SimulationError, match="must yield events"):
            sim.run()

    def test_non_generator_rejected(self):
        sim = Simulation()
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_cross_simulation_event_rejected(self):
        sim1, sim2 = Simulation(), Simulation()
        evt2 = sim2.event()

        def proc(sim):
            yield evt2

        sim1.process(proc(sim1))
        with pytest.raises(SimulationError, match="another simulation"):
            sim1.run()

    def test_is_alive(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(1)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        sim = Simulation()

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        p = sim.process(sleeper(sim))

        def killer(sim):
            yield sim.timeout(3)
            p.interrupt(cause="deadline")

        sim.process(killer(sim))
        sim.run()
        assert p.value == ("interrupted", "deadline", 3.0)

    def test_interrupt_finished_process_raises(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(1)

        p = sim.process(proc(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self):
        sim = Simulation()

        def worker(sim):
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            return sim.now

        p = sim.process(worker(sim))

        def killer(sim):
            yield sim.timeout(2)
            p.interrupt()

        sim.process(killer(sim))
        sim.run()
        assert p.value == 7.0


class TestConditions:
    def test_all_of(self):
        sim = Simulation()

        def proc(sim):
            t1 = sim.timeout(1, value="a")
            t2 = sim.timeout(3, value="b")
            results = yield sim.all_of([t1, t2])
            return sorted(results.values())

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == ["a", "b"]
        assert sim.now == 3.0

    def test_any_of(self):
        sim = Simulation()

        def proc(sim):
            t1 = sim.timeout(1, value="fast")
            t2 = sim.timeout(50, value="slow")
            results = yield sim.any_of([t1, t2])
            return list(results.values())

        p = sim.process(proc(sim))
        sim.run(until=2.0)
        assert p.value == ["fast"]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulation()

        def proc(sim):
            results = yield sim.all_of([])
            return results

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == {} and sim.now == 0.0

    def test_all_of_fails_fast(self):
        sim = Simulation()
        bad = sim.event()

        def proc(sim):
            try:
                yield sim.all_of([sim.timeout(10), bad])
            except RuntimeError:
                return sim.now

        p = sim.process(proc(sim))
        bad.fail(RuntimeError("x"))
        sim.run()
        assert p.value == 0.0

    def test_condition_cross_sim_rejected(self):
        sim1, sim2 = Simulation(), Simulation()
        with pytest.raises(SimulationError):
            AllOf(sim1, [sim1.event(), sim2.event()])

    def test_all_of_with_processed_events(self):
        sim = Simulation()
        e1 = sim.event()
        e1.succeed(1)
        sim.run()  # e1 now processed

        def proc(sim):
            res = yield sim.all_of([e1, sim.timeout(1, value=2)])
            return sum(res.values())

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 3


class TestRunUntilEvent:
    def test_returns_event_value(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(2)
            return "final"

        p = sim.process(proc(sim))
        assert sim.run(until=p) == "final"

    def test_deadlock_detected(self):
        sim = Simulation()
        never = sim.event()

        def proc(sim):
            yield never

        p = sim.process(proc(sim))
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=p)

    def test_failed_until_event_raises(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(1)
            raise KeyError("nope")

        p = sim.process(proc(sim))
        with pytest.raises(KeyError):
            sim.run(until=p)

    def test_step_on_empty_raises(self):
        with pytest.raises(SimulationError):
            Simulation().step()


class TestScheduleCallback:
    def test_callback_runs_at_delay(self):
        sim = Simulation()
        seen = []
        sim.schedule_callback(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]
