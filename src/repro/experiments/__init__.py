"""Per-figure experiment harnesses (see DESIGN.md §3 for the index).

Each module exposes ``run_*`` returning an :class:`ExperimentResult` whose
table/series print the same rows the paper's figure plots. ``benchmarks/``
wraps these with pytest-benchmark; ``EXPERIMENTS.md`` records paper-vs-
measured numbers; ``python -m repro report`` regenerates everything.

Index: E1 (Fig 2), E2 (Fig 5), E3 (Fig 8), E4 (Fig 11), E5 (ANL), E6
(DEISA), E7 (staging vs GFS), E8 (latency), E9 (auth), E10 (HSM), E11
(BG/L), E12 (SCEC capacity), E13 (chaos soak: scripted faults,
lease-expiry detection, failover); ablations A1 (block size), A2 (server
count), A3 (TCP window), A4 (GbE upgrade), A5 (degraded/failover), A6
(loss).
"""

from repro.experiments.harness import ExperimentResult, format_result

__all__ = ["ExperimentResult", "format_result"]
