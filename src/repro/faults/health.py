"""Ground-truth node liveness, separate from *detected* liveness.

The injector flips nodes here instantly; nothing on the data path reads
this directly except the machinery that models a dead machine (an RPC
parked on a crashed server, a heartbeat process that has stopped
renewing). Detected state lives in ``NsdService.down_nodes`` and is only
ever set by the lease detector — the gap between the two is exactly the
detection latency E13 measures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.kernel import Event, Simulation


class NodeHealth:
    """Tracks which nodes are actually up, and when they crashed."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._down: Dict[str, float] = {}  # node -> crash sim-time
        self._restart_waiters: Dict[str, List[Event]] = {}

    def is_up(self, node: str) -> bool:
        return node not in self._down

    def crash_time(self, node: str) -> float | None:
        """Sim time at which ``node`` crashed, or None if it is up."""
        return self._down.get(node)

    def crash(self, node: str) -> None:
        if node in self._down:
            raise RuntimeError(f"node {node!r} is already down")
        self._down[node] = self.sim.now

    def restore(self, node: str) -> None:
        if node not in self._down:
            raise RuntimeError(f"node {node!r} is not down")
        del self._down[node]
        for event in self._restart_waiters.pop(node, []):
            if not event.triggered:
                event.succeed(node)

    def wait_restart(self, node: str) -> Event:
        """Event that fires when ``node`` next comes back up.

        If the node is currently up the event fires immediately (callers
        race it against other conditions via ``any_of``).
        """
        event = Event(self.sim)
        if node not in self._down:
            event.succeed(node)
        else:
            self._restart_waiters.setdefault(node, []).append(event)
        return event
