"""repro — reproduction of "Massive High-Performance Global File Systems
for Grid Computing" (Andrews, Kovatch, Jordan; SC 2005).

The package implements a simulated wide-area Global File System (GFS) in the
style of IBM GPFS multi-clustering as deployed at SDSC across the TeraGrid,
plus every substrate the paper's evaluation depends on:

* ``repro.sim``        — discrete-event simulation kernel
* ``repro.net``        — flow-level WAN/LAN network model (TCP caps, FCIP)
* ``repro.storage``    — disks, RAID, controllers, SAN fabric
* ``repro.core``       — the GPFS-like parallel file system (NSD architecture)
* ``repro.auth``       — RSA multi-cluster auth, GSI identities, UID domains
* ``repro.hsm``        — hierarchical storage management (tape migrate/recall)
* ``repro.grid``       — GridFTP staging baseline and grid job model
* ``repro.workloads``  — Enzo / NVO / SCEC / sort / viz / MPI-IO generators
* ``repro.topology``   — SC'02/'03/'04, TeraGrid, SDSC-2005, DEISA scenarios
* ``repro.experiments``— per-figure harnesses (E1..E10, A1..A3)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
