"""A1 benchmark — ablation: filesystem block size vs WAN throughput."""

from repro.experiments.ablations import run_a1_blocksize


def test_a1_blocksize(run_experiment):
    result = run_experiment(run_a1_blocksize)
    rates = [
        result.metric(f"rate_bs{k}k") for k in (256, 512, 1024, 2048, 4096)
    ]
    # bigger blocks → deeper in-flight window → higher WAN throughput,
    # with diminishing returns once the NIC saturates
    assert rates[0] < rates[2] < rates[-1] * 1.01
    assert rates[-1] > 2 * rates[0]
