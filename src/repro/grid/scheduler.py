"""GUR-style co-reservation of compute nodes and scratch disk.

SC'04's demonstration scheduled its nodes "using GUR" (Fig 7). The part of
grid scheduling the paper actually leans on is *admission*: a staging job
needs both compute nodes and enough local scratch to receive its dataset;
the paper's §1 point is that sites without 50–250 TB of free scratch are
simply excluded — while GFS jobs only reserve compute. The scheduler
reproduces that exclusion effect for the E7 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.kernel import Simulation
from repro.sim.resources import Container, Resource


class ReservationError(RuntimeError):
    """Admission refused (not enough nodes or scratch)."""


@dataclass
class SiteResources:
    """One site's schedulable capacity."""

    name: str
    compute_nodes: int
    scratch_bytes: float

    def __post_init__(self) -> None:
        if self.compute_nodes < 1 or self.scratch_bytes < 0:
            raise ValueError("need >=1 node and non-negative scratch")


@dataclass
class Reservation:
    site: str
    nodes: int
    scratch: float
    _node_req: object = field(default=None, repr=False)
    released: bool = False


class GurScheduler:
    """Co-reservation across sites."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._sites: Dict[str, SiteResources] = {}
        self._node_pools: Dict[str, Resource] = {}
        self._scratch: Dict[str, Container] = {}
        self.admissions = 0
        self.rejections = 0

    def add_site(self, site: SiteResources) -> None:
        if site.name in self._sites:
            raise ValueError(f"site {site.name!r} already registered")
        self._sites[site.name] = site
        self._node_pools[site.name] = Resource(
            self.sim, capacity=site.compute_nodes, name=f"{site.name}-nodes"
        )
        if site.scratch_bytes > 0:
            self._scratch[site.name] = Container(
                self.sim,
                capacity=site.scratch_bytes,
                init=site.scratch_bytes,
                name=f"{site.name}-scratch",
            )

    def sites(self) -> List[str]:
        return list(self._sites)

    def free_scratch(self, site: str) -> float:
        container = self._scratch.get(site)
        return container.level if container else 0.0

    def eligible_sites(self, nodes: int, scratch: float) -> List[str]:
        """Sites that could admit the request right now (the §1 filter)."""
        out = []
        for name, site in self._sites.items():
            if site.compute_nodes < nodes:
                continue
            if scratch > 0 and self.free_scratch(name) < scratch:
                continue
            out.append(name)
        return out

    def reserve(self, site: str, nodes: int, scratch: float = 0.0) -> Reservation:
        """Immediate (non-blocking) admission; raises on refusal."""
        if site not in self._sites:
            raise ReservationError(f"unknown site {site!r}")
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        pool = self._node_pools[site]
        if pool.capacity - pool.count < nodes:
            self.rejections += 1
            raise ReservationError(
                f"{site}: {nodes} nodes requested, {pool.capacity - pool.count} free"
            )
        if scratch > 0:
            if self.free_scratch(site) < scratch:
                self.rejections += 1
                raise ReservationError(
                    f"{site}: {scratch:.3g} B scratch requested, "
                    f"{self.free_scratch(site):.3g} free"
                )
            # immediate grant (level checked above)
            self._scratch[site].get(scratch)
        reqs = [pool.request() for _ in range(nodes)]
        assert all(r.triggered for r in reqs)
        self.admissions += 1
        return Reservation(site=site, nodes=nodes, scratch=scratch, _node_req=reqs)

    def release(self, reservation: Reservation) -> None:
        if reservation.released:
            raise ReservationError("reservation already released")
        pool = self._node_pools[reservation.site]
        for req in reservation._node_req:
            pool.release(req)
        if reservation.scratch > 0:
            self._scratch[reservation.site].put(reservation.scratch)
        reservation.released = True
