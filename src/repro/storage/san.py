"""SAN plumbing: Fibre Channel HBAs and switch fabric.

The NSD servers reach the bricks through FC Host Bus Adapters (one 2 Gb/s
HBA per server in the 2005 production build; three per server at SC'04)
and a Brocade fabric. A 2 Gb/s FC link carries ~200 MB/s of payload after
8b/10b coding. The fabric itself is non-blocking at the paper's port
counts, so it contributes an optional aggregate cap only.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.sim.kernel import Event, Simulation
from repro.storage.array import Lun
from repro.storage.pipes import Pipe
from repro.util.units import MB

#: Payload rate of one 2 Gb/s FC link after 8b/10b coding.
FC2_RATE = MB(200)


class Hba:
    """A server's FC port: both directions share the link budget."""

    def __init__(self, sim: Simulation, rate: float = FC2_RATE, ports: int = 1, name: str = "hba") -> None:
        if ports < 1:
            raise ValueError("ports must be >= 1")
        self.sim = sim
        self.ports = ports
        self._pipe = Pipe(sim, rate * ports, name=name)

    def transfer(self, nbytes: float) -> Event:
        return self._pipe.transfer(nbytes)

    @property
    def rate(self) -> float:
        return self._pipe.rate


class SanFabric:
    """Brocade-style fabric: maps servers to LUNs, optional aggregate cap."""

    def __init__(
        self,
        sim: Simulation,
        aggregate_rate: Optional[float] = None,
        name: str = "san",
    ) -> None:
        self.sim = sim
        self.name = name
        self._hbas: Dict[str, Hba] = {}
        self._zones: Dict[str, list[Lun]] = {}
        self._agg: Optional[Pipe] = (
            Pipe(sim, aggregate_rate, name=f"{name}.agg") if aggregate_rate else None
        )

    def attach_server(self, server: str, hba: Hba) -> None:
        if server in self._hbas:
            raise ValueError(f"server {server!r} already attached")
        self._hbas[server] = hba
        self._zones[server] = []

    def zone(self, server: str, lun: Lun) -> None:
        """Grant ``server`` access to ``lun``."""
        if server not in self._hbas:
            raise KeyError(f"server {server!r} not attached to fabric {self.name!r}")
        self._zones[server].append(lun)

    def luns_for(self, server: str) -> list[Lun]:
        return list(self._zones.get(server, []))

    def io(self, server: str, lun: Lun, kind: str, nbytes: float, sequential: bool = True) -> Event:
        """Full SAN path: HBA → (fabric) → controller → RAID."""
        if server not in self._hbas:
            raise KeyError(f"server {server!r} not attached to fabric {self.name!r}")
        if lun not in self._zones[server]:
            raise PermissionError(
                f"server {server!r} is not zoned for LUN {lun.name!r}"
            )
        return self.sim.process(
            self._io(server, lun, kind, nbytes, sequential), name=f"{self.name}-io"
        )

    def _io(
        self, server: str, lun: Lun, kind: str, nbytes: float, sequential: bool
    ) -> Generator[Event, None, None]:
        hba = self._hbas[server]
        yield hba.transfer(nbytes)
        if self._agg is not None:
            yield self._agg.transfer(nbytes)
        yield lun.io(kind, nbytes, sequential)
