"""The HSM coordinator: migrate cold files to tape, recall on demand.

The paper's preferred model (§8): "an automatic, algorithmic approach
where data is migrated to tape storage as it is less used and recalled
when needed". :class:`MigrationPolicy` is that algorithm — age threshold
plus disk-occupancy water marks; :class:`HsmManager` executes it against a
filesystem, using a privileged mount for data movement so the bytes on
tape are the real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.core.client import MountedFs
from repro.hsm.tape import TapeLibrary
from repro.sim.kernel import Event


class HsmError(RuntimeError):
    pass


@dataclass(frozen=True)
class MigrationPolicy:
    """When to push file data to tape.

    * ``min_age``: only files idle (atime) at least this long are eligible.
    * ``high_water`` / ``low_water``: a policy run starts migrating when
      disk occupancy exceeds ``high_water`` and stops once below
      ``low_water`` (fractions of capacity).
    * ``min_size``: skip tiny files (tape mounts cost more than they free).
    """

    min_age: float = 30 * 86400.0
    high_water: float = 0.85
    low_water: float = 0.70
    min_size: int = 1
    pin_paths: tuple = ()

    def __post_init__(self) -> None:
        if not 0 < self.low_water <= self.high_water <= 1:
            raise ValueError("need 0 < low_water <= high_water <= 1")
        if self.min_age < 0 or self.min_size < 0:
            raise ValueError("min_age and min_size must be non-negative")


class HsmManager:
    """Migration/recall engine for one filesystem."""

    def __init__(self, mount: MountedFs, library: TapeLibrary,
                 policy: Optional[MigrationPolicy] = None) -> None:
        self.mount = mount
        self.fs = mount.fs
        self.sim = mount.sim
        self.library = library
        self.policy = policy or MigrationPolicy()
        self.migrated_files = 0
        self.recalled_files = 0
        self.migrated_bytes = 0.0
        self.recalled_bytes = 0.0
        from repro.obs.registry import OBS

        if OBS.enabled:
            from repro.obs.wire import attach_hsm

            attach_hsm(self)

    # -- state queries ---------------------------------------------------------

    def is_offline(self, path: str) -> bool:
        return self.fs.namespace.resolve(path).hsm_offline is not None

    def resident_fraction(self) -> float:
        return self.fs.used_bytes / self.fs.capacity

    # -- migrate ------------------------------------------------------------------

    def migrate(self, path: str) -> Event:
        """Push one file's data to tape and free its disk blocks."""
        return self.sim.process(self._migrate(path), name=f"migrate:{path}")

    def _migrate(self, path: str) -> Generator[Event, None, None]:
        inode = self.fs.namespace.resolve(path)
        if inode.is_dir:
            raise HsmError(f"cannot migrate a directory: {path}")
        if inode.hsm_offline is not None:
            raise HsmError(f"{path} is already offline")
        if inode.size == 0:
            raise HsmError(f"{path} is empty; nothing to migrate")
        # Read the file through the data plane (tape copy is a real copy).
        handle = yield self.mount.open(path, "r")
        data = yield self.mount.read(handle, inode.size)
        yield self.mount.close(handle)
        token = f"{self.fs.name}:{inode.ino}:{int(self.sim.now)}"
        payload = data if self.fs.store_data else None
        yield self.library.archive(token, float(inode.size), payload)
        # Punch out the disk copy.
        size = inode.size
        self.fs.free_file_blocks(inode)
        self.mount.pool.invalidate(inode.ino)
        inode.hsm_offline = token
        self.migrated_files += 1
        self.migrated_bytes += size
        return token

    # -- recall --------------------------------------------------------------------

    def recall(self, path: str) -> Event:
        """Bring an offline file back to disk (no-op if already resident)."""
        return self.sim.process(self._recall(path), name=f"recall:{path}")

    def _recall(self, path: str) -> Generator[Event, None, None]:
        inode = self.fs.namespace.resolve(path)
        if inode.hsm_offline is None:
            yield self.sim.timeout(0.0)
            return False
        token = inode.hsm_offline
        payload, length = yield self.library.retrieve(token)
        size = inode.size
        inode.hsm_offline = None  # writable again before the data lands
        handle = yield self.mount.open(path, "r+")
        if payload is not None:
            yield self.mount.pwrite(handle, 0, payload)
        else:
            yield self.mount.pwrite(handle, 0, int(length))
        yield self.mount.close(handle)
        inode.size = size
        self.recalled_files += 1
        self.recalled_bytes += size
        return True

    def ensure_online(self, path: str) -> Event:
        """Transparent-access helper: recall iff offline."""
        return self.recall(path)

    def transparent(self, mount: MountedFs) -> "TransparentMount":
        """Wrap a mount so opens recall offline files automatically —
        §8's "automatic recall of requested data from deeper archive"."""
        return TransparentMount(mount, self)

    # -- policy runs ------------------------------------------------------------------

    def eligible_files(self) -> List[str]:
        """Paths eligible for migration under the policy, oldest-atime first."""
        policy = self.policy
        now = self.sim.now
        out = []
        for path in self.fs.namespace.walk():
            inode = self.fs.namespace.resolve(path)
            if inode.is_dir or inode.hsm_offline is not None:
                continue
            if inode.size < policy.min_size:
                continue
            if path in policy.pin_paths:
                continue
            if now - inode.atime < policy.min_age:
                continue
            out.append((inode.atime, path))
        out.sort()
        return [path for _, path in out]

    def run_policy(self) -> Event:
        """One policy sweep; value is the list of migrated paths."""
        return self.sim.process(self._run_policy(), name="hsm-policy")

    def periodic_policy(self, interval: float) -> Event:
        """Run the policy every ``interval`` seconds, forever.

        Returns the daemon process; interrupt it to stop. This is the §8
        "automatic, algorithmic approach where data is migrated to tape
        storage as it is less used" running unattended.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")

        def _daemon():
            from repro.sim.kernel import Interrupt

            try:
                while True:
                    yield self.sim.timeout(interval)
                    yield self.run_policy()
            except Interrupt:
                return None

        return self.sim.process(_daemon(), name="hsm-daemon")

    def _run_policy(self) -> Generator[Event, None, None]:
        migrated: List[str] = []
        if self.resident_fraction() < self.policy.high_water:
            yield self.sim.timeout(0.0)
            return migrated
        for path in self.eligible_files():
            if self.resident_fraction() <= self.policy.low_water:
                break
            yield self.migrate(path)
            migrated.append(path)
        return migrated


class TransparentMount:
    """A mount proxy whose :meth:`open` recalls offline files first.

    Everything else delegates to the wrapped :class:`MountedFs`, so the
    proxy can be handed to any workload.
    """

    def __init__(self, mount: MountedFs, hsm: HsmManager) -> None:
        if mount.fs is not hsm.fs:
            raise ValueError("mount and HSM manager serve different filesystems")
        self._mount = mount
        self._hsm = hsm
        self.recalls_triggered = 0

    def open(self, path: str, mode: str = "r", create: bool = False) -> Event:
        sim = self._mount.sim

        def _proc():
            try:
                inode = self._mount.fs.namespace.resolve(path)
                offline = inode.hsm_offline is not None
            except Exception:
                offline = False
            if offline:
                self.recalls_triggered += 1
                yield self._hsm.recall(path)
            handle = yield self._mount.open(path, mode, create)
            return handle

        return sim.process(_proc(), name=f"hsm-open:{path}")

    def __getattr__(self, name):
        return getattr(self._mount, name)
