#!/usr/bin/env python
"""HSM lifecycle: the §8 'copyright library' in action.

A dataset ages on the production GFS; the water-mark policy migrates cold
files to the tape silo; a user touches an offline file and waits out the
robot; and the archive is mirrored to a partner site (the SDSC↔PSC
second-copy arrangement), from which a 'local catastrophe' is repaired.

Run:  python examples/hsm_lifecycle.py
"""

from repro.core.cluster import Gfs, NsdSpec
from repro.hsm.manager import HsmManager, MigrationPolicy
from repro.hsm.replicate import ArchiveReplicator
from repro.hsm.tape import LTO2, TapeLibrary
from repro.util.units import Gbps, MB, MiB, fmt_bytes, fmt_time


def main():
    g = Gfs(seed=13)
    net = g.network
    net.add_node("sdsc-sw", kind="switch")
    net.add_node("psc-sw", kind="switch")
    net.add_link("sdsc-sw", "psc-sw", Gbps(10), delay=0.028)
    for i in range(4):
        net.add_host(f"s{i}", "sdsc-sw", Gbps(1), site="sdsc")
    net.add_host("mover", "sdsc-sw", Gbps(10), site="sdsc")
    net.add_host("psc", "psc-sw", Gbps(10), site="psc")
    sdsc = g.add_cluster("sdsc", site="sdsc")
    sdsc.add_nodes([f"s{i}" for i in range(4)] + ["mover"])
    fs = sdsc.mmcrfs(
        "gpfs", [NsdSpec(server=f"s{i}", blocks=256) for i in range(4)],
        block_size=MiB(1), store_data=False,
    )
    mover = g.run(until=sdsc.mmmount("gpfs", "mover"))
    silo = TapeLibrary(g.sim, spec=LTO2, drives=2, cartridges=50, name="sdsc-silo")
    hsm = HsmManager(
        mover, silo,
        MigrationPolicy(min_age=7 * 86400.0, high_water=0.60, low_water=0.35),
    )

    # a year of simulation output accumulates
    def accumulate():
        for month in range(12):
            handle = yield mover.open(f"/runs/month{month:02d}.dat", "w", create=True)
            yield mover.write(handle, int(MB(60)))
            yield mover.close(handle)

    def top():
        yield mover.mkdir("/runs")
        yield g.sim.process(accumulate(), name="accumulate")

    g.run(until=g.sim.process(top(), name="top"))
    # age the files (oldest month least recently read)
    for month in range(12):
        fs.namespace.resolve(f"/runs/month{month:02d}.dat").atime = (
            g.sim.now - (12 - month) * 30 * 86400.0
        )
    print(f"disk occupancy: {hsm.resident_fraction():.0%} "
          f"(policy trips above 60%)")

    migrated = g.run(until=hsm.run_policy())
    print(f"policy migrated {len(migrated)} cold files to tape -> "
          f"occupancy {hsm.resident_fraction():.0%}; "
          f"silo holds {fmt_bytes(silo.used)}")

    # a user touches an offline file: transparent recall
    victim = migrated[0]
    t0 = g.sim.now
    g.run(until=hsm.ensure_online(victim))
    print(f"recall of {victim}: {fmt_time(g.sim.now - t0)} "
          "(robot + seek + stream)")

    # mirror the archive to PSC
    psc_silo = TapeLibrary(g.sim, spec=LTO2, drives=2, cartridges=50, name="psc-silo")
    mirror = ArchiveReplicator(g.sim, g.engine, silo, psc_silo, "mover", "psc")
    count = g.run(until=mirror.replicate_all())
    print(f"replicated {count} segments to PSC ({fmt_bytes(mirror.replicated_bytes)})")

    # local catastrophe: restore a segment from the partner copy
    lost = [t for t in list(silo._catalog) if psc_silo.has(t)][0]
    t0 = g.sim.now
    g.run(until=mirror.restore(lost))
    print(f"disaster restore from PSC: {fmt_time(g.sim.now - t0)}")


if __name__ == "__main__":
    main()
