"""Property tests for the pure range helpers in repro.core.tokens.

``merge_ranges``/``covers``/``HeldToken.conflicts_with`` carry the token
manager's correctness; each is checked against a brute-force oracle over
randomly generated half-open intervals.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.tokens import RO, RW, HeldToken, covers, merge_ranges

interval = st.tuples(st.integers(0, 200), st.integers(1, 60)).map(
    lambda t: (t[0], t[0] + t[1])
)
intervals = st.lists(interval, max_size=12)


def _point_set(ranges):
    out = set()
    for start, end in ranges:
        out.update(range(start, end))
    return out


class TestMergeRanges:
    @given(ranges=intervals)
    def test_union_of_points_is_preserved(self, ranges):
        assert _point_set(merge_ranges(ranges)) == _point_set(ranges)

    @given(ranges=intervals)
    def test_output_sorted_disjoint_nonadjacent(self, ranges):
        merged = merge_ranges(ranges)
        for (a_start, a_end), (b_start, b_end) in zip(merged, merged[1:]):
            assert a_start < a_end
            assert a_end < b_start  # strictly separated, never touching

    @given(ranges=intervals)
    def test_idempotent(self, ranges):
        merged = merge_ranges(ranges)
        assert merge_ranges(merged) == merged

    @given(ranges=intervals)
    def test_order_insensitive(self, ranges):
        assert merge_ranges(list(reversed(ranges))) == merge_ranges(ranges)


class TestCovers:
    @given(ranges=intervals, probe=interval)
    def test_matches_pointwise_oracle(self, ranges, probe):
        start, end = probe
        want = set(range(start, end)) <= _point_set(ranges)
        assert covers(ranges, start, end) == want

    @given(ranges=intervals)
    def test_every_member_range_is_covered(self, ranges):
        for start, end in ranges:
            assert covers(ranges, start, end)

    @given(probe=interval)
    def test_nothing_covered_by_empty(self, probe):
        start, end = probe
        assert not covers([], start, end)


held = st.builds(
    HeldToken,
    holder=st.sampled_from(["c0", "c1", "c2"]),
    mode=st.sampled_from([RO, RW]),
    start=st.integers(0, 200),
    end=st.integers(201, 400),
)


class TestConflictsWith:
    @given(a=held, b=held)
    def test_symmetric(self, a, b):
        assert a.conflicts_with(b.holder, b.mode, b.start, b.end) == (
            b.conflicts_with(a.holder, a.mode, a.start, a.end)
        )

    @given(a=held, b=held)
    def test_oracle(self, a, b):
        overlap = a.start < b.end and b.start < a.end
        want = a.holder != b.holder and overlap and RW in (a.mode, b.mode)
        assert a.conflicts_with(b.holder, b.mode, b.start, b.end) == want

    @given(a=held, mode=st.sampled_from([RO, RW]), probe=interval)
    def test_never_conflicts_with_own_holder(self, a, mode, probe):
        assert not a.conflicts_with(a.holder, mode, *probe)

    @given(a=held, b=held)
    def test_ro_ro_never_conflicts(self, a, b):
        if a.mode == RO and b.mode == RO:
            assert not a.conflicts_with(b.holder, b.mode, b.start, b.end)
