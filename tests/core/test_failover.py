"""Tests for NSD server failover and cluster command distribution."""

import pytest

from repro.core.nsd import NsdServerDown

from tests.core.testbed import mounted, run_io, small_gfs


class TestNsdFailover:
    def test_backups_assigned(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        assert set(fs.service.backup_servers) == {0, 1, 2, 3}
        for nsd_id, backups in fs.service.backup_servers.items():
            assert backups[0].node != fs.service.servers[nsd_id].node

    def test_io_survives_primary_death(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        m = mounted(g, cluster, node="c0")
        payload = b"durable!" * (4 * fs.block_size // 8)  # spans every NSD

        def write_io():
            h = yield m.open("/f", "w", create=True)
            yield m.write(h, payload)
            yield m.close(h)

        run_io(g, write_io())
        fs.service.mark_down("nsd0")
        m.pool.invalidate(fs.namespace.resolve("/f").ino)

        def read_io():
            h = yield m.open("/f", "r")
            return (yield m.read(h, len(payload)))

        assert run_io(g, read_io()) == payload
        assert fs.service.failovers > 0

    def test_all_servers_down_raises(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=2)
        for node in ["nsd0", "nsd1"]:
            fs.service.mark_down(node)
        with pytest.raises(NsdServerDown):
            fs.service.server_of(0)

    def test_recovery_restores_primary(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=2)
        primary = fs.service.servers[0]
        fs.service.mark_down(primary.node)
        assert fs.service.server_of(0) is not primary
        fs.service.mark_up(primary.node)
        assert fs.service.server_of(0) is primary

    def test_single_server_cluster_has_no_backups(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=1)
        assert fs.service.backup_servers == {}

    def test_failovers_count_transitions_not_block_ops(self):
        # Routing N blocks to the backup is ONE failover, not N.
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        fs.service.mark_down("nsd0")
        for _ in range(5):
            fs.service.server_of(0)
        assert fs.service.failovers == 1
        assert len(fs.service.failover_events) == 1
        t, nsd_id, from_node, to_node = fs.service.failover_events[0]
        assert (nsd_id, from_node) == (0, "nsd0")
        assert to_node != "nsd0"

    def test_failback_not_counted(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4)
        fs.service.mark_down("nsd0")
        fs.service.server_of(0)
        fs.service.mark_up("nsd0")
        fs.service.server_of(0)  # back on the primary: not a failover
        assert fs.service.failovers == 1
        fs.service.mark_down("nsd0")
        fs.service.server_of(0)  # a second genuine transition
        assert fs.service.failovers == 2


class TestConfigServers:
    def test_primary_and_secondary(self):
        g, cluster, fs, _ = small_gfs()
        assert cluster.primary_config_server == "nsd0"
        assert cluster.secondary_config_server == "nsd1"

    def test_failover_to_secondary(self):
        g, cluster, fs, _ = small_gfs()
        assert cluster.active_config_server({"nsd0"}) == "nsd1"

    def test_both_down_raises(self):
        from repro.core.cluster import ClusterError

        g, cluster, fs, _ = small_gfs()
        with pytest.raises(ClusterError):
            cluster.active_config_server({"nsd0", "nsd1"})


class TestMmdsh:
    def test_reaches_all_nodes(self):
        g, cluster, fs, _ = small_gfs(nsd_servers=4, clients=2)
        count = g.run(until=cluster.mmdsh())
        assert count == 6
        assert g.sim.now > 0  # paid fan-out round trips

    def test_runs_from_secondary_when_primary_down(self):
        g, cluster, fs, _ = small_gfs()
        count = g.run(until=cluster.mmdsh(down_nodes={"nsd0"}))
        assert count == len(cluster.nodes)
