"""Executes a :class:`FaultSchedule` against a live simulation.

One sim process walks the schedule in time order and applies each action:

* ``node_crash`` / ``node_restart`` flip ground truth in
  :class:`~repro.faults.health.NodeHealth` — nothing else; *detecting*
  the crash is the lease detector's job;
* ``link_down`` / ``link_brownout`` / ``link_restore`` drive
  ``Link.set_rate`` (which now auto-pokes the flow engine), remembering
  original capacities so restores are exact;
* ``loss_burst`` / ``loss_clear`` swap the flow engine's default TCP
  model for a lossier one — new flows created during the burst carry the
  Mathis loss cap;
* ``disk_fail`` kills a drive via ``StorageArray.fail_disk`` and, while
  the RAID set rebuilds, streams reconstruction traffic through the
  owning controller so co-hosted LUNs feel the bandwidth steal;
* ``corrupt_block`` flips a stored byte of one replica via
  ``Nsd.corrupt`` — silent rot that only end-to-end verification can
  catch;
* ``partition`` / ``partition_heal`` drive a
  :class:`~repro.faults.partition.PartitionState`, cutting message and
  block-RPC delivery between the minority node set and everyone else.

Every applied action emits a ``fault.<kind>`` trace instant, so a
Perfetto timeline shows injections, detections, and recoveries on one
clock.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.faults.schedule import FaultAction, FaultSchedule
from repro.sim.kernel import Interrupt, Process, Simulation
from repro.sim.trace import TRACE
from repro.storage.raid import RaidState

#: Residual capacity of an administratively-down link, bytes/s. The fluid
#: engine needs a positive rate; 1 B/s starves flows for any practical
#: purpose while keeping the solver well-posed.
DOWN_RATE = 1.0


class FaultInjector:
    """Replays a schedule: node, link, WAN-loss, and disk faults."""

    def __init__(
        self,
        sim: Simulation,
        schedule: FaultSchedule,
        health=None,
        network=None,
        engine=None,
        arrays: Dict[str, object] | None = None,
        nsds: Dict[str, object] | None = None,
        partition=None,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.health = health
        self.network = network
        self.engine = engine
        self.arrays = dict(arrays or {})
        self.nsds = dict(nsds or {})  # NSD name -> Nsd (corrupt_block targets)
        self.partition = partition
        self._orig_rate: Dict[str, float] = {}  # link name -> pre-fault rate
        self._saved_tcp = None
        self._proc: Process | None = None
        #: (sim time, kind, target) for each action applied.
        self.log: List[Tuple[float, str, str]] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Process:
        """Validate targets, then spawn the replay process."""
        if self._proc is not None:
            raise RuntimeError("injector already started")
        self._validate()
        self._proc = self.sim.process(self._run(), name="fault-injector")
        return self._proc

    @property
    def done(self) -> bool:
        return self._proc is not None and self._proc.triggered

    def stop(self) -> None:
        if self._proc is not None and not self._proc.triggered:
            self._proc.interrupt("injector stopped")

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        """Fail at start(), not mid-run, when a target cannot resolve."""
        for action in self.schedule:
            kind = action.kind
            if kind in ("node_crash", "node_restart", "crash_manager"):
                if self.health is None:
                    raise ValueError(f"{kind} requires a NodeHealth")
            elif kind in ("link_down", "link_brownout", "link_restore"):
                if self.network is None:
                    raise ValueError(f"{kind} requires a Network")
                if not self._resolve_links(action.target):
                    raise ValueError(f"no link matching {action.target!r}")
            elif kind in ("loss_burst", "loss_clear"):
                if self.engine is None:
                    raise ValueError(f"{kind} requires a FlowEngine")
            elif kind == "disk_fail":
                if action.target not in self.arrays:
                    raise ValueError(
                        f"unknown storage array {action.target!r}; "
                        f"known: {sorted(self.arrays)}"
                    )
            elif kind == "corrupt_block":
                if action.target not in self.nsds:
                    raise ValueError(
                        f"unknown NSD {action.target!r}; known: {sorted(self.nsds)}"
                    )
            elif kind in ("partition", "partition_heal"):
                if self.partition is None:
                    raise ValueError(f"{kind} requires a PartitionState")

    def _resolve_links(self, target: str) -> list:
        """Exact link name, or ``a<->b`` for both directions of a pair."""
        if "<->" in target:
            a, b = target.split("<->", 1)
            wanted = {f"{a}->{b}", f"{b}->{a}"}
            return [l for l in self.network.links if l.name in wanted]
        return [l for l in self.network.links if l.name == target]

    # -- the replay process --------------------------------------------------

    def _run(self):
        try:
            for action in self.schedule.ordered():
                delay = action.at - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                self._apply(action)
        except Interrupt:
            return

    def _apply(self, action: FaultAction) -> None:
        getattr(self, f"_do_{action.kind}")(action)
        self.log.append((self.sim.now, action.kind, action.target))
        if TRACE.enabled:
            TRACE.instant(
                self.sim, f"fault.{action.kind}", cat="fault.inject",
                lane="faults", target=action.target, **dict(action.params),
            )

    # -- node faults ---------------------------------------------------------

    def _do_node_crash(self, action: FaultAction) -> None:
        self.health.crash(action.target)

    def _do_node_restart(self, action: FaultAction) -> None:
        self.health.restore(action.target)

    def _do_crash_manager(self, action: FaultAction) -> None:
        # Same ground-truth flip as node_crash; recovery is driven by the
        # lease detector + RecoveryManager, never by the injector.
        self.health.crash(action.target)

    # -- link faults ---------------------------------------------------------

    def _do_link_down(self, action: FaultAction) -> None:
        for link in self._resolve_links(action.target):
            self._orig_rate.setdefault(link.name, link.rate)
            link.set_rate(DOWN_RATE)

    def _do_link_brownout(self, action: FaultAction) -> None:
        factor = float(action.params["factor"])
        for link in self._resolve_links(action.target):
            orig = self._orig_rate.setdefault(link.name, link.rate)
            link.set_rate(orig * factor)

    def _do_link_restore(self, action: FaultAction) -> None:
        for link in self._resolve_links(action.target):
            orig = self._orig_rate.pop(link.name, None)
            if orig is None:
                raise RuntimeError(f"link {link.name} was never degraded")
            link.set_rate(orig)

    # -- WAN loss ------------------------------------------------------------

    def _do_loss_burst(self, action: FaultAction) -> None:
        if self._saved_tcp is not None:
            raise RuntimeError("overlapping loss bursts are not supported")
        loss = float(action.params["loss"])
        self._saved_tcp = self.engine.default_tcp
        self.engine.default_tcp = replace(
            self._saved_tcp, loss=max(self._saved_tcp.loss, loss)
        )

    def _do_loss_clear(self, action: FaultAction) -> None:
        if self._saved_tcp is None:
            raise RuntimeError("loss_clear without a preceding loss_burst")
        self.engine.default_tcp = self._saved_tcp
        self._saved_tcp = None

    # -- disk faults ---------------------------------------------------------

    def _do_disk_fail(self, action: FaultAction) -> None:
        array = self.arrays[action.target]
        lun_index = int(action.params.get("lun", 0))
        lun = array.luns[lun_index]
        array.fail_disk(lun_index)
        if lun.raid.state is RaidState.REBUILDING:
            self.sim.process(
                self._rebuild_traffic(lun), name=f"rebuild:{lun.name}"
            )

    # -- integrity faults -----------------------------------------------------

    def _do_corrupt_block(self, action: FaultAction) -> None:
        nsd = self.nsds[action.target]
        if "phys" in action.params:
            phys = int(action.params["phys"])
        else:
            written = sorted(nsd._sums) or sorted(nsd._data)
            if not written:
                raise RuntimeError(
                    f"corrupt_block: no written blocks on {action.target!r} "
                    f"at t={self.sim.now}"
                )
            phys = written[int(action.params.get("index", 0)) % len(written)]
        nsd.corrupt(phys)

    # -- partitions -----------------------------------------------------------

    def _do_partition(self, action: FaultAction) -> None:
        self.partition.begin(action.target.split(","))

    def _do_partition_heal(self, action: FaultAction) -> None:
        self.partition.heal()

    def _rebuild_traffic(self, lun):
        """Reconstruction writes through the owning controller.

        ``RaidSet.rebuild`` models spindle time; the *front-end* cost —
        rebuild data moving through the shared controller, stealing
        bandwidth from co-hosted LUNs — is charged here in 0.25 s chunks
        while the set is rebuilding.
        """
        chunk_interval = 0.25
        chunk = lun.raid.rebuild_rate * chunk_interval
        while lun.raid.state is RaidState.REBUILDING:
            start = self.sim.now
            yield lun.controller.transfer("write", chunk)
            spent = self.sim.now - start
            if spent < chunk_interval:
                yield self.sim.timeout(chunk_interval - spent)
