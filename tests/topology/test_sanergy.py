"""Behavioural tests for the SC'02 SANergy/FCIP data path."""

import pytest

from repro.topology.sc02 import build_sc02
from repro.util.units import GB, MB, MiB


def rate_for(outstanding, command_bytes=MiB(8), nbytes=GB(4)):
    scenario = build_sc02(outstanding=outstanding, command_bytes=command_bytes)
    sim = scenario.sim
    sim.run(until=scenario.client.stream_read(nbytes))
    return nbytes / sim.now


class TestSanergyPipelining:
    def test_rate_grows_with_outstanding_commands(self):
        r2 = rate_for(2)
        r6 = rate_for(6)
        r12 = rate_for(12)
        assert r2 < r6 < r12

    def test_saturates_at_tunnel_ceiling(self):
        scenario = build_sc02(outstanding=64)
        ceiling = scenario.tunnel.usable_rate
        assert rate_for(64) <= ceiling

    def test_latency_bound_regime_matches_bdp(self):
        # 2 outstanding x 8 MiB over ~>=80ms RTT path: rate ~ window/latency
        r2 = rate_for(2)
        assert r2 == pytest.approx(2 * MiB(8) / 0.130, rel=0.4)

    def test_bigger_commands_beat_smaller_at_same_depth(self):
        small = rate_for(8, command_bytes=MiB(2))
        big = rate_for(8, command_bytes=MiB(8))
        assert big > 1.5 * small

    def test_meter_accounts_all_bytes(self):
        scenario = build_sc02()
        sim = scenario.sim
        sim.run(until=scenario.client.stream_read(MB(512)))
        assert scenario.client.meter.total_bytes == pytest.approx(MB(512))
