"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table


class TestTable:
    def test_render_basic(self):
        t = Table(["nodes", "MB/s"])
        t.add_row([4, 812.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "nodes | MB/s"
        assert "-+-" in lines[1]
        assert lines[2].endswith("812.5")

    def test_title(self):
        t = Table(["a"], title="Fig 11")
        t.add_row([1])
        assert t.render().splitlines()[0] == "Fig 11"

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([1234.5678])
        t.add_row([1.23456])
        body = t.render().splitlines()
        assert "1234.6" in body[2]
        assert "1.23" in body[3]

    def test_render_no_rows(self):
        t = Table(["only", "header"])
        out = t.render()
        assert "only" in out and "header" in out
