"""Unified telemetry: metrics registry, scrape pipeline, SLOs, health.

The observability layer the paper's measurement story implies (and the
ROADMAP's production north star demands), unifying the repo's previously
fragmented signals — Profile counters, Tracer spans, Monitor rate
meters, ad-hoc subsystem counters — behind one queryable surface:

* :mod:`repro.obs.metrics` — Counter / Gauge / Histogram primitives
  (log-bucketed latency histograms with p50/p95/p99/p999);
* :mod:`repro.obs.registry` — the process-wide :data:`OBS` registry
  (disabled by default; one attribute check on the hot path);
* :mod:`repro.obs.collect` — sim-clock scrape collector;
* :mod:`repro.obs.export` — Prometheus-text + JSONL exporters, schema
  validators, and the shared trace/profile snapshot serializers;
* :mod:`repro.obs.slo` — latency/availability objectives with
  error-budget burn rates over sliding sim-time windows;
* :mod:`repro.obs.health` — ``python -m repro health`` fleet report;
* :mod:`repro.obs.wire` — one-call attachment of kernel, flow engine,
  NSD services, tokens, scrub, HSM, and fault detectors.

Everything is derived from sim-clock state only: same seed, same bytes.
"""

from repro.obs.metrics import (
    BOUND_SCHEMES,
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    canonical_key,
    counter_delta,
    merge_histograms,
    parse_key,
)
from repro.obs.collect import Collector, start_collector
from repro.obs.export import (
    SchemaError,
    export_metrics_dir,
    read_jsonl,
    to_prometheus,
    validate_jsonl,
    validate_metrics_dir,
    validate_prometheus,
    validate_snapshot_row,
    write_jsonl,
)
from repro.obs.registry import OBS, SCHEMA, MetricsRegistry
from repro.obs.slo import AvailabilityObjective, LatencyObjective, SloTracker

__all__ = [
    "Collector",
    "SchemaError",
    "export_metrics_dir",
    "read_jsonl",
    "start_collector",
    "to_prometheus",
    "validate_jsonl",
    "validate_metrics_dir",
    "validate_prometheus",
    "validate_snapshot_row",
    "write_jsonl",
    "BOUND_SCHEMES",
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "OBS",
    "SCHEMA",
    "AvailabilityObjective",
    "LatencyObjective",
    "SloTracker",
    "canonical_key",
    "counter_delta",
    "merge_histograms",
    "parse_key",
]
