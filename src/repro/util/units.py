"""Unit constructors and formatters.

Conventions (matching the paper's usage):

* Data sizes and rates are **bytes** and **bytes/second** internally.
* Decimal prefixes (``1 GB == 1e9 B``) are the default, as in the paper's
  "GB/s" figures and disk-capacity arithmetic (``32 x 67 x 250 GB``).
* Binary (IEC) prefixes are available for the places GPFS itself is
  binary-aligned (block sizes: ``256 KiB`` .. ``4 MiB``).
* Network rates quoted in bits/second use the ``*bps`` constructors.

All constructors return plain ``float``/``int`` so arithmetic stays cheap;
units discipline is by convention plus these helpers, not a quantity type
(this is the hot path of a discrete-event simulator).
"""

from __future__ import annotations

# --- Decimal sizes (bytes) --------------------------------------------------

def KB(n: float) -> float:
    """``n`` kilobytes in bytes (decimal)."""
    return n * 1e3


def MB(n: float) -> float:
    """``n`` megabytes in bytes (decimal)."""
    return n * 1e6


def GB(n: float) -> float:
    """``n`` gigabytes in bytes (decimal)."""
    return n * 1e9


def TB(n: float) -> float:
    """``n`` terabytes in bytes (decimal)."""
    return n * 1e12


def PB(n: float) -> float:
    """``n`` petabytes in bytes (decimal)."""
    return n * 1e15


# --- Binary sizes (bytes) ---------------------------------------------------

def KiB(n: float) -> int:
    """``n`` kibibytes in bytes."""
    return int(n * 1024)


def MiB(n: float) -> int:
    """``n`` mebibytes in bytes."""
    return int(n * 1024**2)


def GiB(n: float) -> int:
    """``n`` gibibytes in bytes."""
    return int(n * 1024**3)


def TiB(n: float) -> int:
    """``n`` tebibytes in bytes."""
    return int(n * 1024**4)


# --- Rates ------------------------------------------------------------------

def Kbps(n: float) -> float:
    """``n`` kilobits/second in bytes/second."""
    return n * 1e3 / 8.0


def Mbps(n: float) -> float:
    """``n`` megabits/second in bytes/second."""
    return n * 1e6 / 8.0


def Gbps(n: float) -> float:
    """``n`` gigabits/second in bytes/second."""
    return n * 1e9 / 8.0


# Aliases used by network code where "bit" reads more naturally.
kbit = Kbps
mbit = Mbps
gbit = Gbps


def bits(n_bits: float) -> float:
    """``n_bits`` bits in bytes."""
    return n_bits / 8.0


def to_bits(n_bytes: float) -> float:
    """Bytes → bits."""
    return n_bytes * 8.0


# --- Formatting -------------------------------------------------------------

_DEC = [(1e15, "PB"), (1e12, "TB"), (1e9, "GB"), (1e6, "MB"), (1e3, "KB")]


def fmt_bytes(n: float) -> str:
    """Render a byte count with a decimal prefix, e.g. ``536.0 TB``."""
    neg = n < 0
    n = abs(float(n))
    for factor, suffix in _DEC:
        if n >= factor:
            return f"{'-' if neg else ''}{n / factor:.2f} {suffix}"
    return f"{'-' if neg else ''}{n:.0f} B"


def fmt_rate(bps: float) -> str:
    """Render a bytes/second rate, e.g. ``1.12 GB/s``."""
    return fmt_bytes(bps) + "/s"


def fmt_bits_rate(bps: float) -> str:
    """Render a bytes/second rate in bits/second, e.g. ``8.96 Gb/s``."""
    bits_s = to_bits(bps)
    for factor, suffix in [(1e12, "Tb/s"), (1e9, "Gb/s"), (1e6, "Mb/s"), (1e3, "Kb/s")]:
        if bits_s >= factor:
            return f"{bits_s / factor:.2f} {suffix}"
    return f"{bits_s:.0f} b/s"


def fmt_time(seconds: float) -> str:
    """Render a duration, e.g. ``2h03m``, ``14.2 s``, ``310 ms``."""
    if seconds >= 3600:
        h = int(seconds // 3600)
        m = int((seconds % 3600) // 60)
        return f"{h}h{m:02d}m"
    if seconds >= 60:
        m = int(seconds // 60)
        s = seconds % 60
        return f"{m}m{s:04.1f}s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.1f} us"


_SUFFIXES = {
    "b": 1.0,
    "kb": 1e3,
    "mb": 1e6,
    "gb": 1e9,
    "tb": 1e12,
    "pb": 1e15,
    "kib": 1024.0,
    "mib": 1024.0**2,
    "gib": 1024.0**3,
    "tib": 1024.0**4,
}


def parse_size(text: str) -> float:
    """Parse ``"250GB"``, ``"1 MiB"``, ``"64kb"`` → bytes.

    Raises ``ValueError`` on unknown suffixes.
    """
    s = text.strip().lower().replace(" ", "")
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit() and s[idx - 1] != ".":
        idx -= 1
    num, suffix = s[:idx], s[idx:]
    if not num:
        raise ValueError(f"no numeric part in size {text!r}")
    if suffix == "":
        suffix = "b"
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return float(num) * _SUFFIXES[suffix]
