"""E17 — fleet-scale rate solving: the route-class aggregation sweep.

The paper's architecture works *because* it builds a client×server mesh
of parallel TCP flows; simulating the fleets the ROADMAP aims at (BG/L
funneling thousands of compute clients through shared I/O nodes onto the
TeraGrid) therefore used to cost one solver column per flow. E17 sweeps
the logical-client count over a fixed WAN mesh — 8 SDSC NSD servers
behind the GbE aggregation switch, 16 shared remote I/O hosts at NCSA
and ANL — and reports, per scale point: wall-clock seconds per simulated
second, solver columns vs member flows (the aggregation ratio), solve
and recompute counts, and kernel events per transfer.

The last sweep point is also run with ``aggregate=False`` (the solver's
escape hatch) to measure the speedup *and* to re-verify exactness where
it matters — at scale: both engines must produce the identical shared-tag
rate series (an order-sensitive float sum over every member flow's rate
series), identical completion times, and identical byte counters.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.experiments.harness import ExperimentResult
from repro.net.flow import FlowEngine
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.sim.kernel import Simulation
from repro.topology.teragrid import add_teragrid_backbone
from repro.util.tables import Table
from repro.util.units import Gbps, MiB

#: Concurrent transfers each logical client keeps in flight (the client
#: read-ahead depth the direct-mount path sustains per node).
_CONCURRENCY = 6


def build_fleet_network(servers: int, client_hosts: int) -> Network:
    """TeraGrid backbone; SDSC NSD servers behind the GbE aggregation
    switch; shared client I/O hosts split across NCSA and ANL."""
    net = Network()
    add_teragrid_backbone(net, sites=("sdsc", "ncsa", "anl"))
    net.add_node("sdsc-gbe", site="sdsc", kind="switch")
    net.add_link("sdsc-gbe", "sdsc-sw", Gbps(128), delay=1e-5, efficiency=0.96)
    for i in range(servers):
        net.add_host(f"nsd{i:02d}", "sdsc-gbe", Gbps(1), site="sdsc")
    for j in range(client_hosts):
        site = "ncsa" if j % 2 == 0 else "anl"
        net.add_host(f"ion{j:02d}", f"{site}-sw", Gbps(10), site=site)
    return net


def run_fleet_cell(
    clients: int,
    servers: int = 8,
    client_hosts: int = 16,
    rounds: int = 4,
    block_bytes: float = MiB(8),
    aggregate: bool = True,
) -> Dict[str, float]:
    """One sweep cell; returns measurements plus exactness observables."""
    sim = Simulation()
    net = build_fleet_network(servers, client_hosts)
    engine = FlowEngine(
        sim, net, default_tcp=TcpModel(window=MiB(16)), aggregate=aggregate
    )
    server_names = [f"nsd{i:02d}" for i in range(servers)]
    host_names = [f"ion{j:02d}" for j in range(client_hosts)]
    peak = {"flows": 0, "classes": 0}
    finish_times: List[float] = []

    def client(k: int):
        host = host_names[k % client_hosts]
        # Deterministic stagger + size jitter: finishes land at distinct
        # sim times, so every join/leave re-solves the (single, shared-
        # backbone) component — the churn regime aggregation targets.
        yield sim.timeout((k % 97) * 0.011)
        for r in range(rounds):
            evts = []
            for j in range(_CONCURRENCY):
                src = server_names[(k + r * _CONCURRENCY + j) % servers]
                nbytes = block_bytes * (1 + ((k * 7 + r * 3 + j) % 13) / 13)
                evts.append(
                    engine.transfer(src, host, nbytes, tags=("fleet",))
                )
            peak["flows"] = max(peak["flows"], engine.active_count)
            peak["classes"] = max(peak["classes"], engine.class_count())
            yield sim.all_of(evts)
            finish_times.append(sim.now)

    procs = [sim.process(client(k), name=f"cl{k:04d}") for k in range(clients)]
    wall0 = time.perf_counter()
    sim.run(until=sim.all_of(procs))
    wall = time.perf_counter() - wall0
    state = engine._state
    ops = clients * rounds * _CONCURRENCY
    series = engine.tag_rate_series("fleet")
    return {
        "clients": float(clients),
        "flows_peak": float(peak["flows"]),
        "solver_cols_peak": float(peak["classes"]),
        "wall_s": wall,
        "sim_s": sim.now,
        "wall_per_sim_s": wall / sim.now if sim.now else 0.0,
        "kernel_events": float(sim._seq),
        "events_per_op": sim._seq / ops,
        "recomputes": float(engine.recomputes),
        "solves": float(state.solves),
        "solved_rows": float(state.solved_rows),
        "rate_changes": float(engine.rate_changes),
        "class_joins": float(engine.class_joins),
        "bytes_moved": engine.bytes_moved,
        # exactness observables (compared bit-for-bit agg vs unagg)
        "_series": (tuple(series.times), tuple(series.values)),
        "_finishes": tuple(finish_times),
    }


def run_e17(
    client_counts: tuple = (64, 128, 256, 512, 1024, 2048),
    compare_at: Optional[int] = 1024,
    servers: int = 8,
    client_hosts: int = 16,
    rounds: int = 4,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E17",
        title="fleet-scale rate solving (route-class aggregation sweep)",
        paper_claim=(
            "the NSD client x server mesh scales to fleet-sized parallel "
            "flow counts (ROADMAP north star: beyond the paper's 1000-node "
            "clusters toward 'millions of users')"
        ),
    )
    table = Table(
        ["clients", "flows", "solver cols", "agg ratio", "wall s/sim-s",
         "events/op", "solved rows"],
        title="fleet sweep (aggregation ON)",
    )
    cells = []
    for n in client_counts:
        cell = run_fleet_cell(
            n, servers=servers, client_hosts=client_hosts, rounds=rounds
        )
        cells.append(cell)
        ratio = (
            cell["flows_peak"] / cell["solver_cols_peak"]
            if cell["solver_cols_peak"] else 1.0
        )
        table.add_row([
            int(n),
            int(cell["flows_peak"]),
            int(cell["solver_cols_peak"]),
            f"{ratio:.1f}x",
            f"{cell['wall_per_sim_s']:.4f}",
            f"{cell['events_per_op']:.1f}",
            int(cell["solved_rows"]),
        ])
    result.table = table

    last = cells[-1]
    result.metrics["clients_max"] = last["clients"]
    result.metrics["flows_peak"] = last["flows_peak"]
    result.metrics["solver_cols_peak"] = last["solver_cols_peak"]
    result.metrics["aggregation_ratio"] = (
        last["flows_peak"] / last["solver_cols_peak"]
        if last["solver_cols_peak"] else 1.0
    )
    result.metrics["wall_per_sim_s"] = last["wall_per_sim_s"]
    result.metrics["events_per_op"] = last["events_per_op"]
    result.metrics["solved_rows"] = last["solved_rows"]

    notes = [
        f"{servers} NSD servers @ SDSC, {client_hosts} shared I/O hosts @ "
        f"NCSA+ANL, {_CONCURRENCY} transfers in flight per client"
    ]
    if compare_at is not None:
        agg = next(
            (c for c in cells if c["clients"] == compare_at), None
        ) or run_fleet_cell(
            compare_at, servers=servers, client_hosts=client_hosts,
            rounds=rounds,
        )
        unagg = run_fleet_cell(
            compare_at, servers=servers, client_hosts=client_hosts,
            rounds=rounds, aggregate=False,
        )
        exact = (
            agg["_series"] == unagg["_series"]
            and agg["_finishes"] == unagg["_finishes"]
            and agg["bytes_moved"] == unagg["bytes_moved"]
            and agg["rate_changes"] == unagg["rate_changes"]
        )
        result.metrics["compare_clients"] = float(compare_at)
        result.metrics["speedup_vs_unaggregated"] = (
            unagg["wall_s"] / agg["wall_s"] if agg["wall_s"] else 0.0
        )
        result.metrics["column_reduction"] = (
            unagg["solver_cols_peak"] / agg["solver_cols_peak"]
            if agg["solver_cols_peak"] else 1.0
        )
        result.metrics["bit_identical"] = 1.0 if exact else 0.0
        notes.append(
            f"at {compare_at} clients: {result.metrics['speedup_vs_unaggregated']:.1f}x "
            f"faster than aggregate=False, "
            f"{result.metrics['column_reduction']:.1f}x fewer solver columns, "
            + ("rate series bit-identical"
               if exact else "RATE SERIES DIVERGED (bug!)")
        )
    result.notes = "; ".join(notes)
    return result


def run_e17_quick() -> ExperimentResult:
    return run_e17(client_counts=(64, 128, 256), compare_at=256, rounds=3)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e17()))
