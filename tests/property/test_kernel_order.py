"""Property test: the fast-path kernel preserves event firing order.

``repro.sim.kernel`` grew several fast paths (immediate-resume trampoline,
zero-delay FIFO lane, pooled timeouts, lightweight callback entries —
see ARCHITECTURE.md §10) that are each *argued* order-identical to the
plain single-heap kernel. This suite checks the argument empirically:
``_reference_kernel.py`` is a frozen copy of the pre-optimization kernel,
and both kernels replay the same randomized process/timeout/AllOf/AnyOf/
interrupt graph. The recorded traces — every op completion with its
simulated timestamp, plus final clock and total event count — must match
exactly. Any divergence is a determinism regression, not a tolerance
question, so comparisons are ``==`` on full traces.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.kernel as fast_kernel
from tests.property import _reference_kernel as ref_kernel

# Plenty of zeros and repeated values: ties at equal simulated time are
# exactly where (priority, seq) ordering — and therefore the fast paths —
# can silently diverge.
DELAYS = [0.0, 0.0, 0.0, 0.25, 0.5, 0.5, 1.0, 2.5]

delay_st = st.sampled_from(DELAYS)

op_st = st.one_of(
    st.tuples(st.just("timeout"), delay_st),
    st.tuples(st.just("spawn"), st.integers(0, 3)),
    st.tuples(st.just("shared"), st.integers(0, 7)),
    st.tuples(st.just("allof"), st.lists(delay_st, min_size=1, max_size=3)),
    st.tuples(st.just("anyof"), st.lists(delay_st, min_size=1, max_size=3)),
    st.tuples(st.just("callback"), delay_st),
    st.tuples(st.just("interrupt"), st.integers(0, 7)),
)

scenario_st = st.tuples(
    st.lists(st.lists(op_st, min_size=1, max_size=6), min_size=1, max_size=6),
    st.lists(delay_st, min_size=1, max_size=4),  # shared-event trigger times
)


def run_scenario(kernel, procs, trigger_delays):
    """Replay one op graph on ``kernel``; return (trace, final clock, seq)."""
    sim = kernel.Simulation()
    trace = []
    shared = [sim.event(name=f"sh{i}") for i in range(len(trigger_delays))]

    def trigger(i, d):
        yield sim.timeout(d)
        shared[i].succeed(i)

    for i, d in enumerate(trigger_delays):
        sim.process(trigger(i, d), name=f"trig{i}")

    def leaf(n):
        for _ in range(n):
            yield sim.timeout(0.0)
        return n

    handles = {}

    def worker(pid, ops):
        for j, (kind, arg) in enumerate(ops):
            try:
                if kind == "timeout":
                    yield sim.timeout(arg)
                elif kind == "spawn":
                    got = yield sim.process(leaf(arg), name=f"leaf{pid}.{j}")
                    trace.append((sim.now, "child", pid, j, got))
                elif kind == "shared":
                    got = yield shared[arg % len(shared)]
                    trace.append((sim.now, "shared", pid, j, got))
                elif kind == "allof":
                    yield sim.all_of([sim.timeout(d) for d in arg])
                elif kind == "anyof":
                    yield sim.any_of([sim.timeout(d) for d in arg])
                elif kind == "callback":
                    sim.schedule_callback(
                        arg,
                        lambda p=pid, k=j: trace.append((sim.now, "cb", p, k)),
                        name=f"cb{pid}.{j}",
                    )
                elif kind == "interrupt":
                    yield sim.timeout(0.0)
                    target = handles[arg % len(handles)]
                    if target.is_alive:  # interrupt() raises once triggered
                        target.interrupt(cause=pid)
                trace.append((sim.now, "op", pid, j, kind))
            except kernel.Interrupt as exc:
                trace.append((sim.now, "int", pid, j, exc.cause))
    for pid, ops in enumerate(procs):
        handles[pid] = sim.process(worker(pid, ops), name=f"w{pid}")
    sim.run()
    return trace, sim.now, sim._seq


@settings(max_examples=80, deadline=None)
@given(scenario=scenario_st)
def test_fast_kernel_matches_reference_order(scenario):
    procs, trigger_delays = scenario
    fast = run_scenario(fast_kernel, procs, trigger_delays)
    ref = run_scenario(ref_kernel, procs, trigger_delays)
    assert fast[0] == ref[0], "event firing order diverged from reference"
    assert fast[1] == ref[1], "final simulated clock diverged"
    # Stronger than order: every fast path must consume exactly the seq
    # slots the reference kernel did (the bit-identity argument).
    assert fast[2] == ref[2], "kernel sequence-number stream diverged"
