"""DEISA's four-core-site MC-GPFS (paper §7, Fig 12).

CINECA (Italy), FZJ (Germany), IDRIS (France), RZG (Germany): "Each site
provides its own GPFS file system which is exported to all the other sites
as part of the common global file system" over 1 Gb/s WAN links — "the
only limiting factors left are the 1 Gb/s network connection and disk I/O
bandwidth ... I/O rates of more than 100 Mbytes/s, thus hitting the
theoretical limit of the network connection."

DEISA is "tightly coupled enough to unify the UID space among GFS
participants" — every site shares one UID table, so no GSI extension is
needed (the builder reflects that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.client import MountedFs
from repro.core.cluster import Cluster, Gfs, NsdSpec
from repro.core.filesystem import Filesystem
from repro.net.tcp import TUNED_2005
from repro.topology import teragrid  # noqa: F401  (kept for symmetry of imports)
from repro.util.units import Gbps, MiB

CORE_SITES = ("cineca", "fzj", "idris", "rzg")

#: one-way delays between European core sites (seconds)
SITE_DELAYS = {
    ("cineca", "fzj"): 0.011,
    ("cineca", "idris"): 0.009,
    ("cineca", "rzg"): 0.008,
    ("fzj", "idris"): 0.006,
    ("fzj", "rzg"): 0.005,
    ("idris", "rzg"): 0.009,
}


@dataclass
class DeisaScenario:
    gfs: Gfs
    clusters: Dict[str, Cluster]
    filesystems: Dict[str, Filesystem]
    client_nodes: Dict[str, List[str]]

    def mount(self, at_site: str, fs_site: str, node_index: int = 0, **kw) -> MountedFs:
        """Mount ``fs_site``'s filesystem on a node at ``at_site``."""
        node = self.client_nodes[at_site][node_index]
        cluster = self.clusters[at_site]
        device = f"gpfs-{fs_site}" if fs_site == at_site else f"gpfs-{fs_site}-remote"
        return self.gfs.run(until=cluster.mmmount(device, node, **kw))


def build_deisa(
    servers_per_site: int = 4,
    clients_per_site: int = 4,
    wan_rate: float = Gbps(1),
    block_size: int = MiB(1),
    store_data: bool = False,
    unified_uids: bool = True,
    seed: int = 0,
) -> DeisaScenario:
    """Fig 12: a full mesh of core sites, every fs exported to every site."""
    g = Gfs(seed=seed, default_tcp=TUNED_2005)
    net = g.network
    for site in CORE_SITES:
        net.add_node(f"{site}-sw", site=site, kind="switch")
    for (a, b), delay in SITE_DELAYS.items():
        net.add_link(f"{a}-sw", f"{b}-sw", wan_rate, delay=delay, efficiency=0.94)

    clusters: Dict[str, Cluster] = {}
    filesystems: Dict[str, Filesystem] = {}
    client_nodes: Dict[str, List[str]] = {}
    for site in CORE_SITES:
        cluster = g.add_cluster(site, site=site)
        specs = []
        for i in range(servers_per_site):
            name = f"{site}-nsd{i}"
            net.add_host(name, f"{site}-sw", Gbps(1), site=site)
            cluster.add_node(name)
            specs.append(NsdSpec(server=name, blocks=8192))
        client_nodes[site] = []
        for i in range(clients_per_site):
            name = f"{site}-c{i}"
            net.add_host(name, f"{site}-sw", Gbps(1), site=site)
            cluster.add_node(name)
            client_nodes[site].append(name)
        filesystems[site] = cluster.mmcrfs(
            f"gpfs-{site}", specs, block_size=block_size, store_data=store_data
        )
        cluster.mmauth_update("AUTHONLY")
        clusters[site] = cluster

    # unified UID space across the grid (§7)
    if unified_uids:
        uid = 1000
        for user in ("plasma", "turbulence"):
            for site in CORE_SITES:
                clusters[site].add_user(user, uid=uid)
            uid += 1

    # full-mesh export: every site trusts and mounts every other
    pubs = {site: clusters[site].mmauth_genkey() for site in CORE_SITES}
    for exporter in CORE_SITES:
        for importer in CORE_SITES:
            if exporter == importer:
                continue
            clusters[exporter].mmauth_add(importer, pubs[importer])
            clusters[exporter].mmauth_grant(importer, f"gpfs-{exporter}", "rw")
            clusters[importer].mmremotecluster_add(
                exporter, pubs[exporter], contact_nodes=[f"{exporter}-nsd0"]
            )
            clusters[importer].mmremotefs_add(
                f"gpfs-{exporter}-remote", exporter, f"gpfs-{exporter}"
            )

    return DeisaScenario(
        gfs=g,
        clusters=clusters,
        filesystems=filesystems,
        client_nodes=client_nodes,
    )
