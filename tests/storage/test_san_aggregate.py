"""Tests for the SAN fabric's optional aggregate bandwidth cap."""


from repro.sim import Simulation
from repro.storage import Hba, SanFabric, make_ds4100
from repro.util.units import MB


def make(aggregate_rate=None, servers=2):
    sim = Simulation()
    array = make_ds4100(sim, "b0")
    fabric = SanFabric(sim, aggregate_rate=aggregate_rate)
    for i in range(servers):
        fabric.attach_server(f"s{i}", Hba(sim))
        fabric.zone(f"s{i}", array.luns[i])
    return sim, fabric, array


class TestAggregateCap:
    def test_uncapped_servers_independent(self):
        sim, fabric, array = make(aggregate_rate=None)
        e0 = fabric.io("s0", array.luns[0], "read", MB(100))
        e1 = fabric.io("s1", array.luns[1], "read", MB(100))
        sim.run(until=sim.all_of([e0, e1]))
        uncapped = sim.now
        # a tight shared cap makes the same pair of IOs slower
        sim2, fabric2, array2 = make(aggregate_rate=MB(50))
        e0 = fabric2.io("s0", array2.luns[0], "read", MB(100))
        e1 = fabric2.io("s1", array2.luns[1], "read", MB(100))
        sim2.run(until=sim2.all_of([e0, e1]))
        assert sim2.now > 2 * uncapped

    def test_capped_throughput_bound(self):
        sim, fabric, array = make(aggregate_rate=MB(100))
        nbytes = MB(200)
        e0 = fabric.io("s0", array.luns[0], "read", nbytes)
        e1 = fabric.io("s1", array.luns[1], "read", nbytes)
        sim.run(until=sim.all_of([e0, e1]))
        # 400 MB total through a 100 MB/s fabric: at least 4 seconds
        assert sim.now >= 2 * nbytes / MB(100)

    def test_luns_for(self):
        sim, fabric, array = make()
        assert fabric.luns_for("s0") == [array.luns[0]]
        assert fabric.luns_for("ghost") == []
