"""SC'04: the true grid prototype (paper §4, Figs 7–8).

Pittsburgh show floor: 40 two-way IA64 NSD servers, each with **three** FC
HBAs; 120 × 2 Gb/s FC links to ~160 TB of IBM FastT600 StorCloud disk
(30 GB/s theoretical, ~15 GB/s achieved on the floor). SciNet provided a
30 Gb/s connection — three separate 10 GbE uplinks, each monitored
individually for the Bandwidth Challenge (Fig 8). Enzo ran on DataStar at
SDSC writing straight to the floor; visualization ran at NCSA; a
network-limited sort ran in both directions. GSI authentication was used
for the first time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.client import MountedFs
from repro.core.cluster import Cluster, Gfs, NsdSpec
from repro.core.filesystem import Filesystem
from repro.net.tcp import TUNED_2005
from repro.storage.array import make_fastt600
from repro.storage.san import Hba
from repro.topology.teragrid import add_teragrid_backbone
from repro.util.units import Gbps, MiB

#: one-way show floor → Chicago hub delay (Pittsburgh)
FLOOR_DELAY = 0.006

#: number of SCinet 10 GbE uplinks (Fig 8 monitors each separately)
LANES = 3


@dataclass
class Sc04Scenario:
    gfs: Gfs
    floor: Cluster
    sdsc: Cluster
    ncsa: Cluster
    fs: Filesystem
    lanes: int = LANES
    sdsc_mounts: List[MountedFs] = field(default_factory=list)
    ncsa_mounts: List[MountedFs] = field(default_factory=list)

    def lane_tags(self) -> List[str]:
        return [f"lane{k}" for k in range(self.lanes)]


def build_sc04(
    nsd_servers: int = 40,
    sdsc_clients: int = 24,
    ncsa_clients: int = 24,
    arrays: int = 15,
    block_size: int = MiB(1),
    blocks_per_nsd: int = 8192,
    store_data: bool = False,
    with_disks: bool = True,
    seed: int = 0,
) -> Sc04Scenario:
    """The Fig 7 configuration: StorCloud + 3 SCinet lanes + GSI auth."""
    g = Gfs(seed=seed, default_tcp=TUNED_2005)
    net = g.network
    add_teragrid_backbone(net, sites=("sdsc", "ncsa"))

    # three independent floor switches, one 10 GbE uplink each
    for k in range(LANES):
        net.add_node(f"floor-sw{k}", site="floor", kind="switch")
        net.add_link(
            f"floor-sw{k}", "chi-hub", Gbps(10), delay=FLOOR_DELAY, efficiency=0.94
        )

    floor = g.add_cluster("floor", site="floor")
    bricks = [make_fastt600(g.sim, f"storcloud{i:02d}") for i in range(arrays)] if with_disks else []
    specs: List[NsdSpec] = []
    lun_cursor = 0
    all_luns = [lun for brick in bricks for lun in brick.luns]
    for i in range(nsd_servers):
        name = f"flr-nsd{i:02d}"
        lane = i % LANES
        net.add_host(name, f"floor-sw{lane}", Gbps(1), site="floor")
        floor.add_node(name)
        hba = Hba(g.sim, ports=3) if with_disks else None  # 3 FC HBAs per server
        lun = None
        if all_luns:
            lun = all_luns[lun_cursor % len(all_luns)]
            lun_cursor += 1
        specs.append(
            NsdSpec(
                server=name,
                blocks=blocks_per_nsd,
                lun=lun,
                hba=hba,
                server_tags=(f"lane{lane}",),
            )
        )
    fs = floor.mmcrfs("gpfs-sc04", specs, block_size=block_size, store_data=store_data)

    sdsc = g.add_cluster("sdsc", site="sdsc")
    ncsa = g.add_cluster("ncsa", site="ncsa")
    sdsc_nodes, ncsa_nodes = [], []
    for i in range(sdsc_clients):
        name = f"sdsc-ds{i:03d}"  # DataStar p655 nodes
        net.add_host(name, "sdsc-sw", Gbps(1), site="sdsc")
        sdsc.add_node(name)
        sdsc_nodes.append(name)
    for i in range(ncsa_clients):
        name = f"ncsa-tg{i:03d}"
        net.add_host(name, "ncsa-sw", Gbps(1), site="ncsa")
        ncsa.add_node(name)
        ncsa_nodes.append(name)

    # first outing of the SDSC GSI-flavoured auth (AUTHONLY RSA handshake)
    floor.mmauth_update("AUTHONLY")
    floor_pub = floor.mmauth_genkey()
    for importer in (sdsc, ncsa):
        importer.mmauth_update("AUTHONLY")
        pub = importer.mmauth_genkey()
        floor.mmauth_add(importer.name, pub)
        floor.mmauth_grant(importer.name, "gpfs-sc04", "rw")
        importer.mmremotecluster_add("floor", floor_pub, contact_nodes=[specs[0].server])
        importer.mmremotefs_add("gpfs-sc04", "floor", "gpfs-sc04")

    scenario = Sc04Scenario(gfs=g, floor=floor, sdsc=sdsc, ncsa=ncsa, fs=fs)
    # Per-client prefetch stays at the period default: the demonstration's
    # 24 Gb/s came from *many* clients (the NSD mesh), not per-client
    # tuning — and that is what reproduces Fig 8's 7-9 Gb/s lane variance.
    for name in sdsc_nodes:
        scenario.sdsc_mounts.append(
            g.run(until=sdsc.mmmount("gpfs-sc04", name, tags=("sc04", "sdsc")))
        )
    for name in ncsa_nodes:
        scenario.ncsa_mounts.append(
            g.run(until=ncsa.mmmount("gpfs-sc04", name, tags=("sc04", "ncsa")))
        )
    return scenario
