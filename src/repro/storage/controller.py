"""RAID controllers.

The paper's Fig 1 annotates the DS4100-class bricks with "200 MB/s per
controller"; Fig 9 shows two controllers per brick, one per internal FC
arbitrated loop. We model a controller as a rate-limited stage with
separate read and write rates:

* read: the controller streams at its FC front-end rate (~200 MB/s on a
  2 Gb/s loop);
* write: write-back cache mirroring between the dual controllers plus
  RAID-5 parity handling on SATA firmware cuts sustained writes well below
  reads. The default (calibrated in EXPERIMENTS.md §E4) reproduces the
  read≫write gap of Fig 11 that the paper reports as "not yet understood".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Event, Simulation
from repro.storage.pipes import Pipe
from repro.util.units import MB


@dataclass(frozen=True)
class ControllerSpec:
    name: str
    read_rate: float
    write_rate: float
    per_io_latency: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.read_rate <= 0 or self.write_rate <= 0:
            raise ValueError("controller rates must be positive")
        if self.per_io_latency < 0:
            raise ValueError("per_io_latency must be non-negative")


#: DS4100 controller: 2 Gb/s FC host side, SATA RAID-5 + cache mirroring
#: behind. Write rate calibrated against Fig 11 (see EXPERIMENTS.md §E4):
#: 32 bricks × 2 controllers × 50 MB/s ≈ 3.2 GB/s aggregate writes, vs
#: NIC-bound ~7.5 GB/s reads — the read≫write gap the paper reports as
#: "not yet understood".
DS4100_CONTROLLER = ControllerSpec(
    name="ds4100-ctrl",
    read_rate=MB(200),
    write_rate=MB(50),
)

#: FastT600 with FC drives (SC'04 StorCloud bricks): faster writes.
FASTT600_CONTROLLER = ControllerSpec(
    name="fastt600-ctrl",
    read_rate=MB(200),
    write_rate=MB(150),
)


class Controller:
    """One controller: a queued stage with direction-dependent rates."""

    def __init__(self, sim: Simulation, spec: ControllerSpec, name: str = "") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._pipe = Pipe(
            sim, spec.read_rate, per_io_latency=spec.per_io_latency, name=self.name
        )
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    def transfer(self, kind: str, nbytes: float) -> Event:
        """Pass ``nbytes`` through the controller front end."""
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        rate = self.spec.read_rate if kind == "read" else self.spec.write_rate
        equiv = nbytes * (self._pipe.rate / rate)
        if kind == "read":
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes
        return self._pipe.transfer(equiv)
