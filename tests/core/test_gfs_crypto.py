"""Unit tests for Gfs.pair_cipher / crypto pipe plumbing."""


from repro.core.cluster import Gfs
from repro.util.units import Gbps


def two_clusters(cipher_a="AES128", cipher_b="AES256"):
    g = Gfs()
    net = g.network
    net.add_node("sw", kind="switch")
    net.add_host("a0", "sw", Gbps(1))
    net.add_host("a1", "sw", Gbps(1))
    net.add_host("b0", "sw", Gbps(1))
    ca = g.add_cluster("alpha")
    ca.add_nodes(["a0", "a1"])
    cb = g.add_cluster("beta")
    cb.add_node("b0")
    ca.mmauth_update(cipher_a)
    cb.mmauth_update(cipher_b)
    return g


class TestPairCipher:
    def test_intra_cluster_none(self):
        g = two_clusters()
        assert g.pair_cipher("a0", "a1") is None

    def test_cross_cluster_uses_stricter(self):
        g = two_clusters("AES128", "AES256")
        policy = g.pair_cipher("a0", "b0")
        assert policy.name == "AES256"  # slower crypto wins

    def test_non_encrypting_pair_none(self):
        g = two_clusters("AUTHONLY", "AUTHONLY")
        assert g.pair_cipher("a0", "b0") is None

    def test_one_side_encrypting_applies(self):
        g = two_clusters("AES128", "AUTHONLY")
        assert g.pair_cipher("a0", "b0").name == "AES128"

    def test_unknown_node_none(self):
        g = two_clusters()
        g.network.add_node("stray")
        assert g.pair_cipher("a0", "stray") is None


class TestCryptoPipes:
    def test_two_node_pipes_returned(self):
        g = two_clusters()
        pipes = g.crypto_pipes_for("a0", "b0")
        assert len(pipes) == 2
        assert {p.name for p in pipes} == {"crypto:a0", "crypto:b0"}

    def test_pipes_shared_per_node(self):
        g = two_clusters()
        first = g.crypto_pipes_for("a0", "b0")
        second = g.crypto_pipes_for("b0", "a0")
        assert set(map(id, first)) == set(map(id, second))

    def test_no_pipes_without_encryption(self):
        g = two_clusters("AUTHONLY", "EMPTY")
        assert g.crypto_pipes_for("a0", "b0") == []

    def test_pipe_rate_matches_policy(self):
        g = two_clusters("3DES", "3DES")
        pipes = g.crypto_pipes_for("a0", "b0")
        from repro.auth.cipher import CIPHERS

        assert pipes[0].rate == CIPHERS["3DES"].crypto_rate
