"""A6 benchmark — loss rate vs throughput (Mathis cap)."""

from repro.experiments.ablations import run_a6_loss
from repro.util.units import Gbps


def test_a6_loss(run_experiment):
    result = run_experiment(run_a6_loss)
    # loss-free and 1e-6 loss are window-limited, not loss-limited
    assert result.metric("single_0") == result.metric("single_1em06")
    # Mathis scaling: 100x more loss → 10x less single-stream rate
    ratio = result.metric("single_1em05") / result.metric("single_1em03")
    assert 8 < ratio < 12.5
    # parallelism buys loss tolerance: 32 streams hold line rate to 1e-5
    assert result.metric("parallel32_1em05") > Gbps(9)
    assert result.metric("parallel32_1em03") < Gbps(2)
