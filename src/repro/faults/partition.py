"""Network partition state: who can currently talk to whom.

A WAN partition is not a crash — both sides stay alive, keep their
state, and will reconnect; the danger is *split-brain*: each side
declaring the other dead and handing out conflicting tokens. A
:class:`PartitionState` models one partition at a time as a cut between
a **minority** node set and everyone else: message delivery and block
RPCs across the cut park until :meth:`heal`, and the quorum service
(:class:`repro.faults.quorum.QuorumService`) uses the same cut to decide
which side may keep mutating cluster state.

When no partition is active every query is a cheap boolean — attaching
partition support to the data path adds zero event hops to nominal runs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from repro.sim.kernel import Event, Simulation
from repro.sim.trace import TRACE


class PartitionState:
    """One network cut at a time, with heal events for parked work."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._minority: FrozenSet[str] = frozenset()
        self._active = False
        self._heal_waiters: List[Event] = []
        self.partitions = 0
        self.heals = 0
        #: (start, end, minority) per completed partition window.
        self.history: List[Tuple[float, float, FrozenSet[str]]] = []
        self._started_at = 0.0

    # -- state transitions ----------------------------------------------------

    def begin(self, minority: Iterable[str]) -> None:
        """Cut ``minority`` off from the rest of the network."""
        if self._active:
            raise RuntimeError("a partition is already active")
        cut = frozenset(minority)
        if not cut:
            raise ValueError("partition needs at least one minority node")
        self._minority = cut
        self._active = True
        self._started_at = self.sim.now
        self.partitions += 1
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "partition.begin", cat="fault.partition",
                lane="faults", minority=",".join(sorted(cut)),
            )

    def heal(self) -> None:
        """Reconnect the sides; every parked waiter resumes now."""
        if not self._active:
            raise RuntimeError("no partition to heal")
        self._active = False
        self.heals += 1
        self.history.append((self._started_at, self.sim.now, self._minority))
        self._minority = frozenset()
        waiters, self._heal_waiters = self._heal_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(None)
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "partition.heal", cat="fault.partition", lane="faults",
            )

    # -- queries --------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    @property
    def minority(self) -> FrozenSet[str]:
        return self._minority

    def in_minority(self, node: str) -> bool:
        return self._active and node in self._minority

    def severed(self, a: str, b: str) -> bool:
        """Is the (a, b) pair currently cut by the partition?"""
        if not self._active:
            return False
        return (a in self._minority) != (b in self._minority)

    def wait_heal(self) -> Event:
        """Event firing at heal (immediately when no partition is active)."""
        event = Event(self.sim, name="partition-heal")
        if not self._active:
            event.succeed(None)
        else:
            self._heal_waiters.append(event)
        return event
