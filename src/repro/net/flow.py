"""Fluid flows and the flow engine.

A :class:`Flow` is ``nbytes`` moving along a routed path. The
:class:`FlowEngine` keeps the set of active flows; whenever it changes, it
re-solves max-min fair rates with each flow capped by its TCP model,
advances residual bytes, and schedules the next completion. Changes within
one simulation instant coalesce into a single re-solve.

The re-solve is *incremental* end-to-end (see
:class:`repro.net.fairshare.FairshareState`): flows live in an
insertion-ordered registry (insertion order == seq order, so nothing is
ever re-sorted), each flow owns a persistent column in the solver's
incidence state, and an arrival/departure re-solves only the connected
component of the link-sharing graph it touches. Per-flow kinematics
(residual bytes, predicted finish time) are column-aligned numpy arrays:
residuals advance lazily and vectorized for exactly the columns whose rate
changed, completions are detected by one vectorized compare against the
predicted-finish array, and the next-completion timer is its minimum —
no per-flow Python loop survives on the per-event path.

Tags: each transfer may carry string tags ("wan", "sdsc->ncsa", ...); the
engine maintains an exact piecewise-constant aggregate-rate series per tag —
this is what the figure harnesses plot (e.g. the three SCinet link traces of
Fig 8). Each tag keeps the set of columns carrying it, so a snapshot is one
vectorized gather-sum per tag.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from repro.net import fairshare
from repro.net.fairshare import FairshareState
from repro.net.tcp import TcpModel
from repro.net.topology import Network
from repro.sim.kernel import Event, Simulation
from repro.sim.profile import PROFILE
from repro.sim.trace import TRACE
from repro.util.timeseries import TimeSeries
from repro.util.units import GB

#: A flow within this many seconds of its predicted drain counts as done
#: (guards float drift in time arithmetic).
_DONE_EPS_SECONDS = 1e-9

#: Residual bytes below this *fraction of the flow's size* count as fully
#: delivered (guards float drift in byte arithmetic). Relative on purpose:
#: the old absolute 1e-6-byte floor silently finished sub-microbyte flows
#: before they ever carried a byte.
_DONE_EPS_FRACTION = 1e-12

#: Relative slack when attributing a flow's bound: a rate within this of
#: the flow's cap counts as cap-limited; a link within this of full counts
#: as saturated.
_ATTR_EPS = 1e-6


def _cap_kind(
    tcp: TcpModel, rtt: float, peer_cap: Optional[float],
    has_path: bool, local_rate: float,
) -> str:
    """Which term of the flow's rate cap is binding (bound attribution).

    Candidates mirror :meth:`FlowEngine.transfer`'s cap arithmetic: the
    TCP window limit, the Mathis loss limit, an explicit per-pair cap, and
    the loopback rate for pathless flows. Only evaluated when tracing is
    enabled — the disabled hot path never calls this.
    """
    candidates = [
        (tcp.efficiency * tcp.window_cap(rtt), "window/rtt"),
        (tcp.efficiency * tcp.mathis_cap(rtt), "mathis-loss"),
    ]
    if peer_cap is not None:
        candidates.append((peer_cap, "peer-cap"))
    if not has_path:
        candidates.append((local_rate, "local"))
    return min(candidates, key=lambda c: c[0])[1]


class Flow:
    """One in-flight transfer.

    While in flight, the engine tracks the flow's rate and residual bytes
    in column-aligned arrays (``flow.col`` indexes them); the ``rate`` and
    ``remaining`` attributes here are materialized when the flow finishes.
    Use :meth:`FlowEngine.flow_rate` for a mid-flight reading.
    """

    __slots__ = (
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "cap",
        "path_ids",
        "one_way_delay",
        "tags",
        "done",
        "start_time",
        "seq",
        "col",
        "cap_kind",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: float,
        cap: float,
        path_ids: Sequence[int],
        one_way_delay: float,
        tags: tuple[str, ...],
        done: Event,
        now: float,
    ) -> None:
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.cap = cap
        self.path_ids = list(path_ids)
        self.one_way_delay = one_way_delay
        self.tags = tags
        self.done = done
        self.start_time = now
        self.seq = -1  # assigned by the engine for deterministic ordering
        self.col = -1  # column in the engine's FairshareState
        self.cap_kind: Optional[str] = None  # which cap term binds (tracing)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.src}->{self.dst} {self.remaining:.3g}/{self.size:.3g}B "
            f"@{self.rate:.3g}B/s>"
        )


class FlowEngine:
    """Shared-bandwidth transfer service over one :class:`Network`."""

    def __init__(
        self,
        sim: Simulation,
        network: Network,
        local_rate: float = GB(2.0),
        default_tcp: Optional[TcpModel] = None,
    ) -> None:
        """``local_rate`` bounds same-node (loopback/memory) transfers."""
        if local_rate <= 0:
            raise ValueError("local_rate must be positive")
        self.sim = sim
        self.network = network
        self.local_rate = local_rate
        self.default_tcp = default_tcp or TcpModel()
        #: Insertion-ordered registry (dict-as-ordered-set): iteration order
        #: is seq order, so nothing ever needs re-sorting.
        self.flows: Dict[Flow, None] = {}
        self.bytes_moved = 0.0
        self.completed_flows = 0
        #: Always-on solver-churn counters (scraped by repro.obs; the
        #: finer-grained PROFILE counters stay opt-in).
        self.recomputes = 0
        self.rate_changes = 0
        self._state = FairshareState(network.link_capacities())
        self._col_flow: Dict[int, Flow] = {}
        # Column-aligned kinematics, grown in lockstep with the state's
        # column capacity. A column's residual is exact as of _last_t[col];
        # the rate has been constant since, so the live residual at t is
        # _rem[col] - rate * (t - _last_t[col]) and the predicted finish
        # time _finish[col] is exact (inf = inactive or not yet rated).
        cap = self._state.capacity
        self._rem = np.zeros(cap)
        self._last_t = np.zeros(cap)
        self._fsize = np.zeros(cap)
        self._finish = np.full(cap, np.inf)
        self._tag_series: Dict[str, TimeSeries] = {}
        self._tag_cols: Dict[str, Set[int]] = {}
        self._tag_idx: Dict[str, np.ndarray] = {}  # fromiter cache, see _snapshot_tags
        self._recompute_pending = False
        self._timer_token = 0
        self._next_seq = 0
        network.subscribe_rate_changes(self._on_link_rate_change)

    # -- public API -----------------------------------------------------------

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        tcp: Optional[TcpModel] = None,
        cap: Optional[float] = None,
        tags: Iterable[str] = (),
    ) -> Event:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with the :class:`Flow`) when the last
        byte *arrives* at ``dst`` — i.e. after the path drains plus one-way
        propagation delay.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tcp = tcp or self.default_tcp
        links = self.network.path(src, dst)
        delay = self.network.one_way_delay(src, dst)
        rtt = self.network.rtt(src, dst) if links else 0.0
        flow_cap = tcp.rate_cap(rtt)
        if cap is not None:
            flow_cap = min(flow_cap, cap)
        if not links:
            flow_cap = min(flow_cap, self.local_rate)
        done = self.sim.event(name=f"xfer:{src}->{dst}")
        now = self.sim.now
        flow = Flow(
            src,
            dst,
            nbytes,
            flow_cap,
            [l.index for l in links],
            delay,
            tuple(tags),
            done,
            now,
        )
        flow.seq = self._next_seq
        self._next_seq += 1
        if nbytes == 0:
            self.sim.schedule_callback(delay, lambda: done.succeed(flow))
            return done
        if TRACE.enabled:
            flow.cap_kind = _cap_kind(tcp, rtt, cap, bool(links), self.local_rate)
            TRACE.flow_created(self.sim, flow.seq, src, dst, nbytes, flow.tags)
        self.flows[flow] = None
        col = flow.col = self._state.add_flow(flow.path_ids, flow_cap)
        self._col_flow[col] = flow
        cap_now = self._state.capacity
        if cap_now > self._rem.shape[0]:
            self._grow_cols(cap_now)
        self._rem[col] = nbytes
        self._last_t[col] = now
        self._fsize[col] = nbytes
        self._finish[col] = np.inf
        for tag in flow.tags:
            self.tag_rate_series(tag)
            self._tag_cols.setdefault(tag, set()).add(col)
            self._tag_idx.pop(tag, None)
        self._mark_dirty()
        return done

    def tag_rate_series(self, tag: str) -> TimeSeries:
        """Exact aggregate-rate trace (bytes/s) for flows carrying ``tag``."""
        series = self._tag_series.get(tag)
        if series is None:
            series = TimeSeries(name=tag)
            self._tag_series[tag] = series
        return series

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def flow_rate(self, flow: Flow) -> float:
        """Current allocated rate of an in-flight flow (0 if finished)."""
        if flow not in self.flows:
            return 0.0
        return self._state.rate_of(flow.col)

    def _on_link_rate_change(self, link, old_rate: float) -> None:
        """Network hook: a ``Link.set_rate`` schedules a recompute now.

        Capacity changes therefore bind at the current sim instant with no
        caller-side poke; the instant makes brownouts/flaps visible in
        Perfetto traces at the right time.
        """
        if TRACE.enabled:
            TRACE.instant(
                self.sim, "link.set_rate", cat="net.link",
                lane=f"link:{link.name}", link=link.name,
                old_rate=old_rate, rate=link.rate,
            )
        self._mark_dirty()

    def poke(self) -> None:
        """Force a rate recompute at the current instant.

        Rarely needed: `Link.set_rate` already schedules a recompute via
        the network's rate-change hook. Kept for exotic mutations (e.g.
        editing `Link.efficiency` directly) and as a harmless no-op after
        set_rate — recomputes at one instant are coalesced. Only
        components containing a changed link are actually re-solved.
        """
        self._mark_dirty()

    def link_utilization(self) -> dict:
        """Instantaneous per-link used fraction (diagnostics).

        Keyed by link name; only links carrying at least one active flow
        appear. Delegates to :func:`repro.net.fairshare.link_utilization`.
        """
        if not self.flows:
            return {}
        flows = list(self.flows)
        util = fairshare.link_utilization(
            self.network.link_capacities(),
            [f.path_ids for f in flows],
            [self._state.rate_of(f.col) for f in flows],
        )
        carrying = sorted({l for f in flows for l in f.path_ids})
        return {self.network.links[l].name: float(util[l]) for l in carrying}

    # -- engine internals -------------------------------------------------------

    def _grow_cols(self, capacity: int) -> None:
        old = self._rem.shape[0]
        for name, fill in (
            ("_rem", 0.0),
            ("_last_t", 0.0),
            ("_fsize", 0.0),
            ("_finish", np.inf),
        ):
            arr = np.full(capacity, fill)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)

    def _mark_dirty(self) -> None:
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule_callback(0.0, self._recompute, name="flow-recompute")

    def _recompute(self) -> None:
        self._recompute_pending = False
        now = self.sim.now
        self.recomputes += 1
        if PROFILE.enabled:
            PROFILE.count("flowengine.recomputes")
            PROFILE.count("flowengine.active_rows", len(self.flows))
        self._finish_drained(now)
        if self.flows:
            self._state.set_link_caps(self.network.link_capacities())
            cols, old_rates = self._state.solve()
            if cols.size:
                self.rate_changes += int(cols.size)
                if PROFILE.enabled:
                    PROFILE.count("flowengine.rate_changes", cols.size)
                # Materialize residuals for exactly the flows whose rate
                # changed (their old rate held from _last_t until now)...
                rem = np.maximum(
                    0.0, self._rem[cols] - old_rates * (now - self._last_t[cols])
                )
                self._rem[cols] = rem
                self._last_t[cols] = now
                # ... and re-predict their finish times at the new rates.
                new_rates = self._state.rates[cols]
                self._finish[cols] = np.where(
                    rem <= self._fsize[cols] * _DONE_EPS_FRACTION,
                    now,
                    now + rem / new_rates,
                )
                if TRACE.enabled:
                    self._trace_rate_changes(cols)
        self._snapshot_tags(now)
        self._schedule_next_completion(now)

    def _finish_drained(self, now: float) -> None:
        """Complete every flow whose predicted finish time has arrived."""
        due = np.nonzero(self._finish <= now + _DONE_EPS_SECONDS)[0]
        if not due.size:
            return
        drained = [self._col_flow[int(c)] for c in due]
        drained.sort(key=lambda f: f.seq)
        for f in drained:
            self._finish_flow(f)

    def _trace_rate_changes(self, cols: np.ndarray) -> None:
        """Record each changed flow's new rate with its bound tag.

        A flow at (or within :data:`_ATTR_EPS` of) its cap is bound by
        whichever cap term :func:`_cap_kind` identified at transfer time;
        otherwise the max-min property guarantees a saturated link on its
        path — attributed to the fullest one. Only called when tracing is
        enabled; costs one matvec over the incidence state per recompute.
        """
        caps = np.asarray(self.network.link_capacities())
        if caps.size:
            util = self._state.link_usage()[: caps.shape[0]] / caps
        else:
            util = caps
        for c in cols:
            flow = self._col_flow.get(int(c))
            if flow is None:
                continue
            rate = self._state.rate_of(int(c))
            if rate >= flow.cap * (1.0 - _ATTR_EPS):
                bound = flow.cap_kind or "cap"
            else:
                best = -1
                best_u = 1.0 - _ATTR_EPS
                for l in flow.path_ids:
                    if util[l] > best_u:
                        best, best_u = l, util[l]
                if best >= 0:
                    bound = f"link:{self.network.links[best].name}"
                else:
                    bound = "uncapped"
            TRACE.flow_rate(self.sim, flow.seq, rate, bound)

    def _finish_flow(self, f: Flow) -> None:
        col = f.col
        del self.flows[f]
        self._state.remove_flow(col)
        del self._col_flow[col]
        self._finish[col] = np.inf
        for tag in f.tags:
            self._tag_cols[tag].discard(col)
            self._tag_idx.pop(tag, None)
        f.rate = 0.0
        f.remaining = 0.0
        self.bytes_moved += f.size
        self.completed_flows += 1
        if TRACE.enabled:
            TRACE.flow_drained(self.sim, f.seq)
        if f.one_way_delay > 0:
            self.sim.schedule_callback(
                f.one_way_delay, lambda f=f: f.done.succeed(f), name="flow-arrive"
            )
        else:
            f.done.succeed(f)

    def _snapshot_tags(self, now: float) -> None:
        rates = self._state.rates
        for tag, series in self._tag_series.items():
            cols = self._tag_cols.get(tag)
            if cols:
                # Cache the fromiter materialization between membership
                # changes. The cached array preserves the set's own
                # iteration order, so the (order-sensitive) float sum
                # below associates exactly as an uncached rebuild would.
                idx = self._tag_idx.get(tag)
                if idx is None:
                    idx = np.fromiter(cols, dtype=np.intp, count=len(cols))
                    self._tag_idx[tag] = idx
                total = float(rates[idx].sum())
            else:
                total = 0.0
            series.add(now, total)

    def _schedule_next_completion(self, now: float) -> None:
        self._timer_token += 1
        if not self.flows:
            return
        horizon = float(self._finish.min()) - now
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows with zero rate — network has no capacity for them"
            )
        token = self._timer_token
        self.sim.schedule_callback(
            max(horizon, 0.0), lambda: self._on_timer(token), name="flow-finish"
        )

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a newer schedule
        self._recompute()
