"""Queued resources: servers, stores, and level containers.

* :class:`Resource` — ``capacity`` concurrent holders, FIFO waiters. Models
  disk queues, HBA ports, tape drives.
* :class:`PriorityResource` — like Resource but waiters carry a priority
  (lower first); used by the token manager so revocations pass new requests.
* :class:`Store` — FIFO of items; models mailboxes / RPC queues.
* :class:`Container` — continuous level with put/get; models disk-space
  accounting and HSM watermarks.

All acquisition methods return events suitable for ``yield`` inside a
process.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any

from repro.sim.kernel import Event, Simulation, SimulationError


class Request(Event):
    """A pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` concurrent holders with a FIFO wait queue."""

    def __init__(self, sim: Simulation, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> Request:
        """Acquire a slot; the returned event fires when granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a held or queued request."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError(
                    f"release of unknown request on resource {self.name!r}"
                ) from None

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int, order: int) -> None:
        super().__init__(resource)
        self.priority = priority
        self._order = order

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-number first."""

    def __init__(self, sim: Simulation, capacity: int = 1, name: str = "presource") -> None:
        super().__init__(sim, capacity, name)
        self._pqueue: list[PriorityRequest] = []
        self._order = itertools.count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        req = PriorityRequest(self, priority, next(self._order))
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            heapq.heappush(self._pqueue, req)
        return req

    def release(self, request: Request) -> None:  # type: ignore[override]
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self._pqueue.remove(request)  # type: ignore[arg-type]
                heapq.heapify(self._pqueue)
            except ValueError:
                raise SimulationError(
                    f"release of unknown request on resource {self.name!r}"
                ) from None

    def _grant_next(self) -> None:
        while self._pqueue and len(self.users) < self.capacity:
            nxt = heapq.heappop(self._pqueue)
            self.users.append(nxt)
            nxt.succeed()


class Store:
    """Unbounded-or-bounded FIFO of Python objects."""

    def __init__(self, sim: Simulation, capacity: float = float("inf"), name: str = "store") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Insert ``item``; event fires when the item is accepted."""
        evt = Event(self.sim, name=f"put:{self.name}")
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            evt.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            evt.succeed()
        else:
            self._putters.append((evt, item))
        return evt

    def get(self) -> Event:
        """Remove the oldest item; event fires with the item."""
        evt = Event(self.sim, name=f"get:{self.name}")
        if self.items:
            evt.succeed(self.items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self.items.append(item)
                putter.succeed()
        else:
            self._getters.append(evt)
        return evt

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous level in ``[0, capacity]`` with blocking put/get."""

    def __init__(
        self,
        sim: Simulation,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init level out of range")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        evt = Event(self.sim, name=f"put:{self.name}")
        self._putters.append((evt, amount))
        self._settle()
        return evt

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds capacity {self.capacity}")
        evt = Event(self.sim, name=f"get:{self.name}")
        self._getters.append((evt, amount))
        self._settle()
        return evt

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                evt, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    evt.succeed()
                    progress = True
            if self._getters:
                evt, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    evt.succeed(amount)
                    progress = True
