"""Exporters and schema validators for the telemetry layer.

This is the repo's **one serialization path** for metrics-shaped data:

* :func:`to_prometheus` — Prometheus text exposition of a scrape row
  (cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` for
  histograms, plain samples for counters and gauges);
* :func:`write_jsonl` / :func:`read_jsonl` — the JSONL time series, one
  scrape row per line, schema :data:`~repro.obs.registry.SCHEMA`;
* :func:`export_metrics_dir` — everything an experiment emits into
  ``--metrics-dir``: ``<id>.prom``, ``<id>.metrics.jsonl``,
  ``<id>.meta.json``;
* :func:`trace_snapshot` / :func:`profile_snapshot` — the summary
  dictionaries that :meth:`repro.sim.trace.Tracer.metrics_snapshot` and
  :meth:`repro.sim.profile.Profile.snapshot` now delegate to, so the
  trace/profile JSON consumed by ``report --profile-json`` and the CI
  validators share this module's schema definitions;
* ``validate_*`` — structural checks mirrored by the checked-in schema
  document ``docs/schemas/metrics_v1.json`` (a test asserts the two
  stay in sync); CI runs them against the quick-report artifacts.

Everything serialized here is derived from sim-clock state only, so
output files are bit-identical across same-seed runs. ``json.dumps``
always gets ``sort_keys=True`` for the same reason.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import Histogram, parse_key
from repro.obs.registry import SCHEMA, MetricsRegistry

#: Structural schema for one JSONL scrape row, mirrored verbatim in
#: ``docs/schemas/metrics_v1.json`` (tests assert equality). Keys map to
#: required top-level fields and their JSON types.
SNAPSHOT_ROW_SCHEMA = {
    "schema": SCHEMA,
    "required": {
        "schema": "string",
        "kind": "string",
        "t": "number",
        "sim": "integer",
        "counters": "object",
        "gauges": "object",
        "histograms": "object",
    },
    "histogram": {
        "required": {
            "count": "integer",
            "sum": "number",
            "scheme": "string",
            "buckets": "object",
        },
    },
}


class SchemaError(ValueError):
    """An exported artifact does not match the repro.metrics/v1 schema."""


# -- prometheus text ---------------------------------------------------------


def _prom_name(family: str) -> str:
    """Metric family → Prometheus-legal name (dots become underscores)."""
    return "".join(
        c if c.isalnum() or c == "_" else "_" for c in family
    )


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{merged[k]}"' for k in sorted(merged))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Compact deterministic number rendering (ints stay integral)."""
    f = float(value)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def to_prometheus(row: dict) -> str:
    """Render one scrape row as Prometheus text exposition format."""
    lines: List[str] = [
        f"# repro.metrics snapshot t={_fmt(row['t'])} sim={row['sim']}"
    ]
    typed: set = set()

    def header(family: str, kind: str) -> None:
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {_prom_name(family)} {kind}")

    for key in sorted(row.get("counters", {})):
        family, labels = parse_key(key)
        header(family, "counter")
        lines.append(
            f"{_prom_name(family)}{_prom_labels(labels)}"
            f" {_fmt(row['counters'][key])}"
        )
    for key in sorted(row.get("gauges", {})):
        family, labels = parse_key(key)
        header(family, "gauge")
        lines.append(
            f"{_prom_name(family)}{_prom_labels(labels)}"
            f" {_fmt(row['gauges'][key])}"
        )
    for key in sorted(row.get("histograms", {})):
        family, labels = parse_key(key)
        header(family, "histogram")
        h = Histogram.from_dict(row["histograms"][key])
        name = _prom_name(family)
        cum = 0
        for i, bound in enumerate(h.bounds):
            cum += h.counts[i]
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels(labels, {'le': _fmt(bound)})} {cum}"
            )
        lines.append(
            f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {h.count}"
        )
        lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(h.sum)}")
        lines.append(f"{name}_count{_prom_labels(labels)} {h.count}")
    return "\n".join(lines) + "\n"


# -- jsonl time series -------------------------------------------------------


def dumps_row(row: dict) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def write_jsonl(rows: Iterable[dict], path: str) -> None:
    with open(path, "w") as fh:
        for row in rows:
            fh.write(dumps_row(row) + "\n")


def read_jsonl(path: str) -> List[dict]:
    rows: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# -- metrics-dir layout ------------------------------------------------------


def export_metrics_dir(
    registry: MetricsRegistry,
    out_dir: str,
    exp_id: str,
    meta: Optional[dict] = None,
) -> Dict[str, str]:
    """Write ``<id>.prom`` + ``<id>.metrics.jsonl`` + ``<id>.meta.json``.

    The ``.prom`` file is the *final* scrape (cumulative state at run
    end); the JSONL carries the whole time series; ``.meta.json`` holds
    experiment metadata (phases, SLO evaluations) for ``repro health``.
    Returns the paths written, keyed ``prom``/``jsonl``/``meta``.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "prom": os.path.join(out_dir, f"{exp_id}.prom"),
        "jsonl": os.path.join(out_dir, f"{exp_id}.metrics.jsonl"),
        "meta": os.path.join(out_dir, f"{exp_id}.meta.json"),
    }
    rows = registry.rows
    last = rows[-1] if rows else {
        "schema": SCHEMA, "kind": "scrape", "t": 0.0, "sim": 0,
        "counters": {}, "gauges": {}, "histograms": {},
    }
    with open(paths["prom"], "w") as fh:
        fh.write(to_prometheus(last))
    write_jsonl(rows, paths["jsonl"])
    doc = {"schema": SCHEMA, "kind": "meta", "exp_id": exp_id}
    doc.update(meta or {})
    with open(paths["meta"], "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return paths


# -- validators --------------------------------------------------------------


_JSON_TYPES = {
    "string": str,
    "number": (int, float),
    "integer": int,
    "object": dict,
}


def validate_snapshot_row(row: dict) -> None:
    """Raise :class:`SchemaError` unless ``row`` is a valid scrape row."""
    if not isinstance(row, dict):
        raise SchemaError(f"row is not an object: {type(row).__name__}")
    for field, typ in SNAPSHOT_ROW_SCHEMA["required"].items():
        if field not in row:
            raise SchemaError(f"scrape row missing field {field!r}")
        if not isinstance(row[field], _JSON_TYPES[typ]) or (
            typ == "number" and isinstance(row[field], bool)
        ):
            raise SchemaError(
                f"scrape row field {field!r}: expected {typ}, "
                f"got {type(row[field]).__name__}"
            )
    if row["schema"] != SCHEMA:
        raise SchemaError(f"unknown schema {row['schema']!r}")
    for key, hist in row["histograms"].items():
        for field, typ in SNAPSHOT_ROW_SCHEMA["histogram"]["required"].items():
            if field not in hist:
                raise SchemaError(f"histogram {key!r} missing field {field!r}")
            if not isinstance(hist[field], _JSON_TYPES[typ]):
                raise SchemaError(
                    f"histogram {key!r} field {field!r}: expected {typ}"
                )
        if sum(hist["buckets"].values()) != hist["count"]:
            raise SchemaError(
                f"histogram {key!r}: bucket counts do not sum to count"
            )


def validate_jsonl(path: str) -> int:
    """Validate every row of a JSONL file; returns the row count.

    Time must be monotone non-decreasing *per simulation* — sweep
    experiments (E8) interleave rows from many independent sim clocks.
    """
    rows = read_jsonl(path)
    t_prev: Dict[int, float] = {}
    for i, row in enumerate(rows):
        try:
            validate_snapshot_row(row)
        except SchemaError as exc:
            raise SchemaError(f"{path}:{i + 1}: {exc}") from None
        if row["t"] < t_prev.get(row["sim"], float("-inf")):
            raise SchemaError(f"{path}:{i + 1}: time went backwards")
        t_prev[row["sim"]] = row["t"]
    return len(rows)


def validate_prometheus(text: str) -> int:
    """Structural check of Prometheus text output; returns sample count.

    Checks: every non-comment line is ``name[{labels}] value``, every
    histogram family has ``_count``/``_sum``/``+Inf`` bucket, and bucket
    counts are monotone non-decreasing in ``le``.
    """
    samples = 0
    hist_state: Dict[str, int] = {}
    seen_inf: set = set()
    hist_families: set = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            if line.startswith("# TYPE ") and line.endswith(" histogram"):
                hist_families.add(line.split()[2])
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise SchemaError(f"prometheus line {lineno}: no value")
        try:
            float(value_part)
        except ValueError:
            raise SchemaError(
                f"prometheus line {lineno}: bad value {value_part!r}"
            ) from None
        samples += 1
        if "_bucket{" in name_part:
            series = name_part.split("{")[0][: -len("_bucket")]
            labels = name_part.split("{", 1)[1].rstrip("}")
            # The bucket series key is every label EXCEPT le: buckets of
            # one (family, labels) series must be monotone in le, but
            # differently-labeled series are independent.
            others = [p for p in labels.split(",") if not p.startswith('le="')]
            base = name_part.split("{")[0] + "{" + ",".join(others) + "}"
            if 'le="+Inf"' in labels:
                seen_inf.add(base)
            cum = int(float(value_part))
            prev = hist_state.get(base, 0)
            if cum < prev:
                raise SchemaError(
                    f"prometheus line {lineno}: non-monotone buckets "
                    f"for {series}"
                )
            hist_state[base] = cum
    for base in hist_state:
        if base not in seen_inf:
            raise SchemaError(f"histogram series {base!r} missing +Inf bucket")
    for family in hist_families:
        if not any(
            b.startswith(f"{family}_bucket{{") for b in hist_state
        ):
            raise SchemaError(f"histogram family {family!r} has no buckets")
    return samples


def validate_metrics_dir(path: str) -> Dict[str, dict]:
    """Validate every exported experiment in a ``--metrics-dir``.

    Returns ``{exp_id: {"rows": n, "samples": n}}``; raises
    :class:`SchemaError` on the first invalid artifact.
    """
    out: Dict[str, dict] = {}
    for fname in sorted(os.listdir(path)):
        if not fname.endswith(".metrics.jsonl"):
            continue
        exp_id = fname[: -len(".metrics.jsonl")]
        info = {"rows": validate_jsonl(os.path.join(path, fname))}
        prom = os.path.join(path, f"{exp_id}.prom")
        if os.path.exists(prom):
            with open(prom) as fh:
                info["samples"] = validate_prometheus(fh.read())
        meta = os.path.join(path, f"{exp_id}.meta.json")
        if os.path.exists(meta):
            with open(meta) as fh:
                doc = json.load(fh)
            if doc.get("schema") != SCHEMA or doc.get("kind") != "meta":
                raise SchemaError(f"{meta}: bad schema/kind")
        out[exp_id] = info
    if not out:
        raise SchemaError(f"no .metrics.jsonl files in {path}")
    return out


# -- trace / profile snapshot dedup ------------------------------------------
# These are THE bodies of Tracer.metrics_snapshot and Profile.snapshot;
# the sim-layer methods are thin delegating shims so every metrics-shaped
# JSON artifact in the repo is produced (and validated) here.


def trace_snapshot(tracer) -> dict:
    """Summary dict for a :class:`repro.sim.trace.Tracer`."""
    drained = sum(1 for r in tracer.flows if r.t_end is not None)
    return {
        "events": {
            "recorded": tracer.events_recorded,
            "buffered": len(tracer._events),
            "dropped": tracer.events_dropped,
            "open_spans": tracer.open_spans,
        },
        "spans_by_category": {
            cat: {"count": int(n), "sim_seconds": secs}
            for cat, (n, secs) in sorted(tracer._span_stats.items())
        },
        "flows": {
            "recorded": len(tracer.flows),
            "drained": drained,
            "dropped": tracer.flows_dropped,
        },
        "bounds": tracer.bound_summary(),
        "links": tracer.link_summary(),
    }


def profile_snapshot(profile) -> dict:
    """Summary dict for a :class:`repro.sim.profile.Profile`."""
    return {
        "counters": dict(profile.counters),
        "timers": dict(profile.timers),
    }


def validate_trace_snapshot(doc: dict) -> None:
    """Structural check of a trace metrics snapshot (CI artifact)."""
    for field in ("events", "spans_by_category", "flows", "bounds", "links"):
        if field not in doc:
            raise SchemaError(f"trace snapshot missing field {field!r}")
    for field in ("recorded", "buffered", "dropped", "open_spans"):
        if field not in doc["events"]:
            raise SchemaError(f"trace snapshot events missing {field!r}")


def validate_profile_snapshot(doc: dict) -> None:
    """Structural check of a profile snapshot (CI artifact)."""
    for field in ("counters", "timers"):
        if not isinstance(doc.get(field), dict):
            raise SchemaError(f"profile snapshot field {field!r} not an object")
