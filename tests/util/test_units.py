"""Tests for repro.util.units."""

import pytest

from repro.util import units


class TestConstructors:
    def test_decimal_sizes(self):
        assert units.KB(1) == 1e3
        assert units.MB(2) == 2e6
        assert units.GB(0.5) == 5e8
        assert units.TB(1) == 1e12
        assert units.PB(1) == 1e15

    def test_paper_disk_arithmetic(self):
        # "32 x 67 x 250 GB = 536 TB" (paper §5)
        raw = 32 * 67 * units.GB(250)
        assert raw == units.TB(536)

    def test_binary_sizes(self):
        assert units.KiB(1) == 1024
        assert units.MiB(1) == 1024**2
        assert units.GiB(2) == 2 * 1024**3
        assert units.TiB(1) == 1024**4

    def test_binary_sizes_are_ints(self):
        assert isinstance(units.MiB(4), int)

    def test_rates(self):
        assert units.Gbps(8) == 1e9  # 8 Gb/s == 1 GB/s
        assert units.Mbps(8) == 1e6
        assert units.Kbps(8) == 1e3

    def test_rate_aliases(self):
        assert units.gbit(10) == units.Gbps(10)
        assert units.mbit(1) == units.Mbps(1)
        assert units.kbit(1) == units.Kbps(1)

    def test_bits_roundtrip(self):
        assert units.to_bits(units.bits(1234.0)) == pytest.approx(1234.0)


class TestFormatting:
    def test_fmt_bytes(self):
        assert units.fmt_bytes(units.TB(536)) == "536.00 TB"
        assert units.fmt_bytes(units.GB(1.5)) == "1.50 GB"
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(0) == "0 B"

    def test_fmt_bytes_negative(self):
        assert units.fmt_bytes(-units.GB(1)) == "-1.00 GB"

    def test_fmt_rate(self):
        assert units.fmt_rate(units.GB(1.12)) == "1.12 GB/s"

    def test_fmt_bits_rate_paper_number(self):
        # SC'03 peak: "8.96 Gb/s"
        assert units.fmt_bits_rate(units.Gbps(8.96)) == "8.96 Gb/s"

    def test_fmt_bits_rate_small(self):
        assert units.fmt_bits_rate(units.bits(500)) == "500 b/s"

    def test_fmt_time(self):
        assert units.fmt_time(2 * 3600 + 3 * 60) == "2h03m"
        assert units.fmt_time(65) == "1m05.0s"
        assert units.fmt_time(14.2) == "14.20 s"
        assert units.fmt_time(0.31) == "310.0 ms"
        assert units.fmt_time(2e-5) == "20.0 us"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("250GB", 250e9),
            ("1 MiB", 1024.0**2),
            ("64kb", 64e3),
            ("1.5tb", 1.5e12),
            ("512", 512.0),
            ("2PB", 2e15),
        ],
    )
    def test_valid(self, text, expected):
        assert units.parse_size(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "GB", "12xx", "1 floppy"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            units.parse_size(text)
