"""Small control-message transport (RPC requests, acks, token traffic).

Control messages are tiny compared to data blocks, so they do not enter the
fluid bandwidth solver; a message takes one-way propagation delay plus
serialization at the path bottleneck. This keeps GPFS token/metadata chatter
cheap to simulate while still charging WAN latency where the paper's
multi-cluster protocol pays it (mount handshakes, lock revocations).
"""

from __future__ import annotations


from repro.net.topology import Network
from repro.sim.kernel import Event, Simulation


class MessageService:
    """Latency-accurate, bandwidth-free delivery of small messages."""

    def __init__(self, sim: Simulation, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.messages_sent = 0
        #: Active network cut (repro.faults.PartitionState); None = whole.
        self.partition = None
        self.partition_parked = 0

    def attach_partition(self, partition) -> None:
        """Messages across a severed pair park until the partition heals,
        then deliver (TCP retransmission semantics, not UDP drop)."""
        self.partition = partition

    def _park_then(self, src: str, dst: str, deliver) -> bool:
        """Defer ``deliver`` to the partition heal when the pair is severed.

        Returns True when the message was parked. The None check keeps
        the nominal path allocation-free.
        """
        part = self.partition
        if part is None or not part.severed(src, dst):
            return False
        self.partition_parked += 1
        part.wait_heal().callbacks.append(lambda _e: deliver())
        return True

    def delivery_time(self, src: str, dst: str, nbytes: float = 1024.0) -> float:
        """One-way latency for a message of ``nbytes``."""
        if src == dst:
            return 1e-6  # local daemon hop
        delay = self.network.one_way_delay(src, dst)
        bottleneck = self.network.bottleneck_rate(src, dst)
        return delay + nbytes / bottleneck

    def send(self, src: str, dst: str, payload=None, nbytes: float = 1024.0) -> Event:
        """Deliver ``payload`` to ``dst``; event fires with the payload."""
        self.messages_sent += 1
        evt = self.sim.event(name=f"msg:{src}->{dst}")

        def deliver() -> None:
            self.sim.schedule_callback(
                self.delivery_time(src, dst, nbytes), lambda: evt.succeed(payload)
            )

        if not self._park_then(src, dst, deliver):
            deliver()
        return evt

    def fanout(self, src: str, dsts, payload=None, nbytes: float = 1024.0) -> Event:
        """Send one message to every node in ``dsts`` in parallel; fires
        when the last delivery lands (immediately for an empty fan-out)."""
        sends = [self.send(src, dst, payload, nbytes) for dst in dsts]
        if not sends:
            evt = self.sim.event(name=f"fanout:{src}")
            evt.succeed(None)
            return evt
        return self.sim.all_of(sends)

    def round_trip(
        self,
        src: str,
        dst: str,
        request_bytes: float = 1024.0,
        reply_bytes: float = 1024.0,
        service_time: float = 0.0,
    ) -> Event:
        """Request → (service) → reply; fires after the reply arrives."""
        total = (
            self.delivery_time(src, dst, request_bytes)
            + service_time
            + self.delivery_time(dst, src, reply_bytes)
        )
        self.messages_sent += 2
        evt = self.sim.event(name=f"rpc:{src}<->{dst}")

        def deliver() -> None:
            self.sim.schedule_callback(total, lambda: evt.succeed(None))

        if not self._park_then(src, dst, deliver):
            deliver()
        return evt
