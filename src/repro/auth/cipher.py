"""The ``cipherList`` configuration option (GPFS 2.3 GA, §6.2).

Three regimes:

* ``EMPTY``   — pre-GA behaviour: no RSA handshake required (the rsh-trust
  world the paper calls "problematic from a security standpoint").
* ``AUTHONLY`` — RSA mutual authentication at mount time; data in the clear.
* a cipher name — authentication plus encryption of all filesystem traffic.

Encryption was not free on 2005 CPUs: each cipher carries a throughput
factor applied to that cluster-pair's data flows (used by the E9 bench to
show the tax).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.units import MB


@dataclass(frozen=True)
class CipherPolicy:
    """One cipherList setting.

    ``crypto_rate`` is the absolute per-connection throughput ceiling
    software crypto imposes (bytes/s on a ~1.5 GHz 2005 IA64);
    ``throughput_factor`` is the same tax expressed relative to GbE payload
    rate, kept for ablation sweeps.
    """

    name: str
    requires_auth: bool
    encrypts: bool
    throughput_factor: float  # multiplier on data-path throughput
    crypto_rate: Optional[float] = None  # per-connection cap, bytes/s

    def __post_init__(self) -> None:
        if not 0 < self.throughput_factor <= 1:
            raise ValueError("throughput_factor must be in (0, 1]")
        if self.encrypts and not self.requires_auth:
            raise ValueError("an encrypting cipher implies authentication")
        if self.encrypts and (self.crypto_rate is None or self.crypto_rate <= 0):
            raise ValueError("an encrypting cipher needs a positive crypto_rate")
        if not self.encrypts and self.crypto_rate is not None:
            raise ValueError("crypto_rate only applies to encrypting ciphers")


#: Registry of supported cipherList values.
CIPHERS = {
    "EMPTY": CipherPolicy("EMPTY", requires_auth=False, encrypts=False, throughput_factor=1.0),
    "AUTHONLY": CipherPolicy("AUTHONLY", requires_auth=True, encrypts=False, throughput_factor=1.0),
    # Software crypto rates on ~1.5 GHz IA64:
    "AES128": CipherPolicy("AES128", requires_auth=True, encrypts=True,
                           throughput_factor=0.55, crypto_rate=MB(64)),
    "AES256": CipherPolicy("AES256", requires_auth=True, encrypts=True,
                           throughput_factor=0.45, crypto_rate=MB(52)),
    "3DES": CipherPolicy("3DES", requires_auth=True, encrypts=True,
                         throughput_factor=0.20, crypto_rate=MB(23)),
}


def cipher(name: str) -> CipherPolicy:
    """Look up a cipherList value (KeyError with the valid set otherwise)."""
    try:
        return CIPHERS[name]
    except KeyError:
        raise KeyError(
            f"unknown cipherList {name!r}; valid: {sorted(CIPHERS)}"
        ) from None
