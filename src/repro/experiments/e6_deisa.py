"""E6 — §7: DEISA's four-site MC-GPFS.

Paper: "the current wide area network bandwidth of 1Gb/s among the DEISA
core sites can be fully exploited by the global file system. The only
limiting factors left are the 1Gb/s network connection and disk I/O
bandwidth. This could be confirmed by several benchmarks, which showed I/O
rates of more than 100 Mbytes/s, thus hitting the theoretical limit of the
network connection." Also: a plasma-physics turbulence code ran "at the
different core sites, using direct I/O to the MC-GPFS, the disks
physically located hundreds of kilometers away".
"""

from __future__ import annotations

from itertools import permutations

from repro.experiments.harness import ExperimentResult
from repro.topology.deisa import CORE_SITES, build_deisa
from repro.util.tables import Table
from repro.util.units import MB, MiB
from repro.workloads.base import payload_for
from repro.workloads.viz import VizReader


def run_e6_deisa(
    per_pair_bytes: float = MB(200),
    pairs=None,
) -> ExperimentResult:
    scenario = build_deisa(store_data=False)
    g = scenario.gfs
    pair_list = list(pairs) if pairs is not None else list(permutations(CORE_SITES, 2))

    result = ExperimentResult(
        exp_id="E6",
        title="§7: DEISA MC-GPFS cross-site I/O rates",
        paper_claim=">100 MB/s per pair, hitting the 1 Gb/s WAN limit",
    )
    table = Table(
        ["reader site", "fs site", "read MB/s", "write MB/s"],
        title="DEISA core-site pairs (1 Gb/s WAN)",
    )
    rates = []
    for reader_site, fs_site in pair_list:
        # stage a file locally at the serving site
        local = scenario.mount(fs_site, fs_site)
        path = f"/turb-{reader_site}-{fs_site}"

        def stage(local=local, path=path):
            handle = yield local.open(path, "w", create=True)
            yield local.write(handle, int(per_pair_bytes))
            yield local.close(handle)

        g.run(until=g.sim.process(stage(), name="stage"))
        # remote read (direct I/O over the WAN)
        remote = scenario.mount(reader_site, fs_site, readahead=24)
        t0 = g.sim.now
        g.run(until=VizReader(remote, path, chunk=MiB(2)).run())
        read_rate = per_pair_bytes / (g.sim.now - t0)
        # remote write (the turbulence code writing its output back)
        t0 = g.sim.now

        def wback(remote=remote, path=path):
            handle = yield remote.open(path + ".out", "w", create=True)
            written = 0
            while written < per_pair_bytes:
                n = int(min(MiB(2), per_pair_bytes - written))
                yield remote.write(handle, payload_for(remote, n))
                written += n
            yield remote.close(handle)

        g.run(until=g.sim.process(wback(), name="wback"))
        write_rate = per_pair_bytes / (g.sim.now - t0)
        rates.append((read_rate, write_rate))
        table.add_row([reader_site, fs_site, read_rate / 1e6, write_rate / 1e6])

    result.table = table
    result.metrics["min_read"] = min(r for r, _ in rates)
    result.metrics["min_write"] = min(w for _, w in rates)
    result.metrics["max_read"] = max(r for r, _ in rates)
    result.metrics["wan_ceiling"] = 1e9 / 8 * 0.94
    result.notes = f"{len(pair_list)} ordered site pairs; full-mesh exports"
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e6_deisa()))
