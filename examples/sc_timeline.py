#!/usr/bin/env python
"""The paper's four-year arc in one run: SC'02 → SC'03 → SC'04 → production.

Each demonstration is replayed (scaled) on its faithful topology and the
headline number is compared with the paper's. This is the narrative of
DESIGN.md §2-§5 as executable code.

Run:  python examples/sc_timeline.py        (~2-4 minutes)
"""

from repro.experiments.e5_anl_remote import run_e5_anl
from repro.experiments.fig2_sc02 import run_fig2
from repro.experiments.fig5_sc03 import run_fig5
from repro.experiments.fig8_sc04 import run_fig8
from repro.experiments.harness import sparkline
from repro.util.units import GB, MB, fmt_bits_rate, fmt_rate


def chapter(year, title, paper_line):
    print()
    print(f"--- {year}: {title}")
    print(f"    paper: {paper_line}")


def main():
    print("Massive High-Performance Global File Systems for Grid computing")
    print("the demonstrations, re-run:")

    chapter("SC'02 Baltimore", "GFS via hardware assist (FCIP)",
            "over 720 MB/s despite an 80 ms RTT")
    r = run_fig2(total_bytes=GB(8))
    print(f"    here:  {fmt_rate(r.metric('mean_rate'))} sustained "
          f"of a {fmt_rate(r.metric('ceiling'))} tunnel ceiling")
    print(f"    trace: {sparkline(r.series['read MB/s'])}")

    chapter("SC'03 Phoenix", "first native WAN-GPFS",
            "peak 8.96 Gb/s on one 10 GbE; >1 GB/s sustained; the restart dip")
    r = run_fig5(nsd_servers=24, sdsc_viz_nodes=10, ncsa_viz_nodes=2,
                 per_node_bytes=GB(1.0))
    print(f"    here:  peak {fmt_bits_rate(r.metric('peak_rate'))}, "
          f"median {fmt_rate(r.metric('median_rate'))}")
    print(f"    trace: {sparkline(r.series['uplink rate'])}")

    chapter("SC'04 Pittsburgh", "the true grid prototype (StorCloud + GSI auth)",
            "7-9 Gb/s per SCinet link, ~24 Gb/s aggregate, reads ≈ writes")
    r = run_fig8(nsd_servers=40, clients_per_site=24,
                 per_client_phase_bytes=MB(64), phases=2)
    print(f"    here:  lanes {fmt_bits_rate(r.metric('lane_min_mean'))}"
          f"..{fmt_bits_rate(r.metric('lane_max_mean'))}, "
          f"aggregate {fmt_bits_rate(r.metric('aggregate_mean'))}")
    print(f"    trace: {sparkline(r.series['aggregate'])}")

    chapter("2005 production", "0.5 PB of SATA behind 64 NSD servers",
            "~1.2 GB/s to all 32 nodes at ANL (preliminary)")
    r = run_e5_anl(anl_nodes=16, per_node_bytes=MB(96))
    print(f"    here:  {fmt_rate(r.metric('aggregate_rate'))} aggregate, "
          f"{fmt_rate(r.metric('per_node_rate'))} per node over a "
          f"{r.metric('rtt') * 1e3:.0f} ms path")

    print()
    print("every figure, with shape assertions:  pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
