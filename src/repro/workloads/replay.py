"""Trace-driven workload replay.

Applications the paper could not ship (proprietary codes, user jobs) can be
represented as I/O traces and replayed against any mount. The format is a
plain text file / iterable of records, one operation per line::

    # time  op      path            offset  length
    0.00    open    /data/a.h5      -       -
    0.05    write   /data/a.h5      0       1048576
    1.20    read    /data/a.h5      0       65536
    2.00    close   /data/a.h5      -       -

* ``time`` — earliest simulation-relative start time (seconds); the replay
  never starts an op before its stamp, but an op may start late if the
  previous one is still running (closed-loop replay, like a real app).
* ``op`` — open / read / write / fsync / close / mkdir / unlink.
* fields that do not apply carry ``-``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.sim.kernel import Event
from repro.workloads.base import WorkloadResult, payload_for

OPS = ("open", "read", "write", "fsync", "close", "mkdir", "unlink")


@dataclass(frozen=True)
class TraceOp:
    time: float
    op: str
    path: str
    offset: int = 0
    length: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown trace op {self.op!r} (known: {OPS})")
        if self.time < 0 or self.offset < 0 or self.length < 0:
            raise ValueError(f"negative field in trace op {self}")


def parse_trace(lines: Iterable[str]) -> List[TraceOp]:
    """Parse the text format; '#' comments and blank lines are skipped."""
    ops: List[TraceOp] = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 5:
            raise ValueError(f"trace line {lineno}: expected 5 fields, got {len(fields)}")
        t, op, path, offset, length = fields
        ops.append(
            TraceOp(
                time=float(t),
                op=op,
                path=path,
                offset=0 if offset == "-" else int(offset),
                length=0 if length == "-" else int(length),
            )
        )
    return ops


class TraceReplay:
    """Replay a trace against one mount (closed loop, per-file handles)."""

    def __init__(self, mount, trace: Union[str, Iterable[str], List[TraceOp]]) -> None:
        if isinstance(trace, str):
            trace = trace.splitlines()
        ops = list(trace)
        if ops and not isinstance(ops[0], TraceOp):
            ops = parse_trace(ops)  # type: ignore[arg-type]
        if not ops:
            raise ValueError("empty trace")
        times = [op.time for op in ops]
        if times != sorted(times):
            raise ValueError("trace timestamps must be non-decreasing")
        self.mount = mount
        self.ops: List[TraceOp] = ops  # type: ignore[assignment]

    def run(self) -> Event:
        """Replay; event value is a :class:`WorkloadResult`."""
        return self.mount.sim.process(self._run(), name="trace-replay")

    def _run(self):
        sim = self.mount.sim
        m = self.mount
        t0 = sim.now
        result = WorkloadResult(name="replay")
        handles = {}
        for op in self.ops:
            target = t0 + op.time
            if sim.now < target:
                yield sim.timeout(target - sim.now)
            if op.op == "open":
                handles[op.path] = yield m.open(op.path, "r+", create=True)
            elif op.op == "close":
                handle = handles.pop(op.path, None)
                if handle is None:
                    raise ValueError(f"trace closes unopened file {op.path!r}")
                yield m.close(handle)
            elif op.op == "fsync":
                yield m.fsync(self._handle(handles, op))
            elif op.op == "read":
                data = yield m.pread(self._handle(handles, op), op.offset, op.length)
                got = len(data) if isinstance(data, (bytes, bytearray)) else op.length
                result.bytes_read += got
            elif op.op == "write":
                yield m.pwrite(
                    self._handle(handles, op), op.offset,
                    payload_for(m, op.length),
                )
                result.bytes_written += op.length
            elif op.op == "mkdir":
                yield m.mkdir(op.path)
            elif op.op == "unlink":
                yield m.unlink(op.path)
            result.ops += 1
        # close any handles the trace forgot (flushes dirty data)
        for handle in handles.values():
            yield m.close(handle)
        result.elapsed = sim.now - t0
        return result

    @staticmethod
    def _handle(handles, op: TraceOp):
        handle = handles.get(op.path)
        if handle is None:
            raise ValueError(f"trace op {op.op!r} on unopened file {op.path!r}")
        return handle
