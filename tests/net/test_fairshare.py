"""Unit + property tests for max-min fair allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fairshare import link_utilization, max_min_rates

INF = float("inf")


class TestBasics:
    def test_empty(self):
        assert max_min_rates([10.0], [], []).size == 0

    def test_single_flow_takes_link(self):
        rates = max_min_rates([100.0], [[0]], [INF])
        assert rates[0] == pytest.approx(100.0)

    def test_two_flows_split_evenly(self):
        rates = max_min_rates([100.0], [[0], [0]], [INF, INF])
        assert list(rates) == pytest.approx([50.0, 50.0])

    def test_cap_limited_flow_releases_bandwidth(self):
        rates = max_min_rates([100.0], [[0], [0]], [10.0, INF])
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_flow_on_two_links_gets_bottleneck(self):
        rates = max_min_rates([100.0, 30.0], [[0, 1]], [INF])
        assert rates[0] == pytest.approx(30.0)

    def test_classic_max_min_example(self):
        # Link A (cap 10) shared by f0, f1; f1 also crosses link B (cap 3).
        # f1 is bottlenecked at 3 on B; f0 then takes 7 on A.
        rates = max_min_rates([10.0, 3.0], [[0], [0, 1]], [INF, INF])
        assert rates[1] == pytest.approx(3.0)
        assert rates[0] == pytest.approx(7.0)

    def test_pathless_flow_gets_cap(self):
        rates = max_min_rates([10.0], [[], [0]], [5.0, INF])
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(10.0)

    def test_pathless_needs_finite_cap(self):
        with pytest.raises(ValueError):
            max_min_rates([10.0], [[]], [INF])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            max_min_rates([0.0], [[0]], [1.0])
        with pytest.raises(ValueError):
            max_min_rates([10.0], [[0]], [0.0])
        with pytest.raises(ValueError):
            max_min_rates([10.0], [[0]], [1.0, 2.0])

    def test_parallel_streams_aggregate_to_line_rate(self):
        # The paper's key effect: N window-capped streams fill the WAN pipe.
        wan = 1.25e9  # 10 GbE in bytes/s
        per_stream_cap = 0.8e6 * 100  # 80 MB/s cap each (window/RTT)
        n = 32
        rates = max_min_rates([wan], [[0]] * n, [per_stream_cap] * n)
        assert rates.sum() == pytest.approx(min(wan, n * per_stream_cap))

    def test_many_equal_flows_fill_link(self):
        rates = max_min_rates([100.0], [[0]] * 7, [INF] * 7)
        assert rates.sum() == pytest.approx(100.0)
        assert np.allclose(rates, 100.0 / 7)

    def test_utilization_helper(self):
        caps = [100.0, 30.0]
        flows = [[0], [0, 1]]
        rates = max_min_rates(caps, flows, [INF, INF])
        util = link_utilization(caps, flows, rates)
        assert util[0] == pytest.approx(1.0)
        assert util[1] == pytest.approx(1.0)


# -- property-based ------------------------------------------------------------

link_caps_st = st.lists(st.floats(1.0, 1e10), min_size=1, max_size=8)


@st.composite
def allocation_problem(draw):
    caps = draw(link_caps_st)
    nlinks = len(caps)
    nflows = draw(st.integers(1, 12))
    flow_links = [
        sorted(
            draw(
                st.sets(st.integers(0, nlinks - 1), min_size=1, max_size=min(4, nlinks))
            )
        )
        for _ in range(nflows)
    ]
    flow_caps = draw(
        st.lists(
            st.one_of(st.floats(0.5, 1e9), st.just(INF)),
            min_size=nflows,
            max_size=nflows,
        )
    )
    return caps, flow_links, flow_caps


@settings(max_examples=200, deadline=None)
@given(allocation_problem())
def test_no_link_oversubscribed(problem):
    caps, flow_links, flow_caps = problem
    rates = max_min_rates(caps, flow_links, flow_caps)
    used = np.zeros(len(caps))
    for f, path in enumerate(flow_links):
        for l in path:
            used[l] += rates[f]
    assert np.all(used <= np.asarray(caps) * (1 + 1e-6))


@settings(max_examples=200, deadline=None)
@given(allocation_problem())
def test_every_flow_gets_positive_rate(problem):
    caps, flow_links, flow_caps = problem
    rates = max_min_rates(caps, flow_links, flow_caps)
    assert np.all(rates > 0)


@settings(max_examples=200, deadline=None)
@given(allocation_problem())
def test_no_flow_exceeds_cap(problem):
    caps, flow_links, flow_caps = problem
    rates = max_min_rates(caps, flow_links, flow_caps)
    for rate, cap in zip(rates, flow_caps):
        assert rate <= cap * (1 + 1e-6)


@settings(max_examples=200, deadline=None)
@given(allocation_problem())
def test_pareto_saturation(problem):
    """Every flow is either at its cap or crosses a ~fully-used link."""
    caps, flow_links, flow_caps = problem
    rates = max_min_rates(caps, flow_links, flow_caps)
    used = np.zeros(len(caps))
    for f, path in enumerate(flow_links):
        for l in path:
            used[l] += rates[f]
    for f, path in enumerate(flow_links):
        at_cap = rates[f] >= flow_caps[f] * (1 - 1e-6)
        bottlenecked = any(used[l] >= caps[l] * (1 - 1e-6) for l in path)
        assert at_cap or bottlenecked, (rates[f], flow_caps[f], path)


@settings(max_examples=100, deadline=None)
@given(allocation_problem())
def test_allocation_deterministic(problem):
    caps, flow_links, flow_caps = problem
    a = max_min_rates(caps, flow_links, flow_caps)
    b = max_min_rates(caps, flow_links, flow_caps)
    assert np.array_equal(a, b)
