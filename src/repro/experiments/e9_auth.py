"""E9 — §6: multi-cluster authentication.

Three measurable aspects of the GPFS 2.3 auth work the paper describes:

1. mount-time cost: rsh-trust (EMPTY) vs RSA handshake (AUTHONLY) vs
   encrypting ciphers — the handshake pays WAN round trips;
2. data-path cost: ``cipherList`` encryption taxes per-connection
   throughput on 2005 CPUs;
3. semantics: per-filesystem ro/rw grants and GSI DN ownership across
   mismatched UID domains (§6's motivation).
"""

from __future__ import annotations

from repro.core.cluster import Gfs, NsdSpec
from repro.core.multicluster import MountAuthError
from repro.experiments.harness import ExperimentResult
from repro.util.tables import Table
from repro.util.units import Gbps, MB, MiB, fmt_rate, fmt_time
from repro.workloads.viz import VizReader


def _build(cipher: str, wan_delay: float = 0.030):
    g = Gfs(seed=11)
    net = g.network
    net.add_node("sdsc-sw", kind="switch")
    net.add_node("ncsa-sw", kind="switch")
    net.add_link("sdsc-sw", "ncsa-sw", Gbps(30), delay=wan_delay)
    servers = [f"s{i}" for i in range(8)]
    for s in servers:
        net.add_host(s, "sdsc-sw", Gbps(1), site="sdsc")
    net.add_host("n0", "ncsa-sw", Gbps(1), site="ncsa")
    sdsc = g.add_cluster("sdsc", site="sdsc")
    sdsc.add_nodes(servers)
    ncsa = g.add_cluster("ncsa", site="ncsa")
    ncsa.add_node("n0")
    fs = sdsc.mmcrfs(
        "gpfs", [NsdSpec(server=s, blocks=4096) for s in servers],
        block_size=MiB(1), store_data=False,
    )
    sdsc.mmauth_update(cipher)
    ncsa.mmauth_update(cipher)
    if cipher != "EMPTY":
        sdsc_pub = sdsc.mmauth_genkey()
        ncsa_pub = ncsa.mmauth_genkey()
        sdsc.mmauth_add("ncsa", ncsa_pub)
        ncsa.mmremotecluster_add("sdsc", sdsc_pub, ["s0"])
    else:
        ncsa.mmremotecluster_add("sdsc", sdsc.mmauth_genkey(), ["s0"])
    sdsc.mmauth_grant("ncsa", "gpfs", "rw")
    ncsa.mmremotefs_add("gpfs-r", "sdsc", "gpfs")
    return g, sdsc, ncsa, fs


def run_e9(read_bytes: float = MB(128)) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E9",
        title="§6: multi-cluster mount auth and cipherList data-path cost",
        paper_claim="RSA mount auth replaces root rsh; per-fs ro/rw grants; optional encryption",
    )
    table = Table(
        ["cipherList", "mount time", "remote read rate"],
        title="mount handshake + data path per cipher",
    )
    for cipher in ("EMPTY", "AUTHONLY", "AES128", "AES256", "3DES"):
        g, sdsc, ncsa, fs = _build(cipher)
        # stage a file at the serving side
        stage = g.run(until=sdsc.mmmount("gpfs", "s7"))

        def seed(stage=stage):
            handle = yield stage.open("/data", "w", create=True)
            yield stage.write(handle, int(read_bytes))
            yield stage.close(handle)

        g.run(until=g.sim.process(seed(), name="seed"))
        t0 = g.sim.now
        mount = g.run(until=ncsa.mmmount("gpfs-r", "n0", tags=("e9",), readahead=24))
        mount_time = g.sim.now - t0
        t0 = g.sim.now
        g.run(until=VizReader(mount, "/data", chunk=MiB(2)).run())
        rate = read_bytes / (g.sim.now - t0)
        table.add_row([cipher, fmt_time(mount_time), fmt_rate(rate)])
        result.metrics[f"mount_time_{cipher}"] = mount_time
        result.metrics[f"read_rate_{cipher}"] = rate
    result.table = table

    # semantics: ro enforcement + missing-grant refusal
    g, sdsc, ncsa, fs = _build("AUTHONLY")
    sdsc.mmauth_grant("ncsa", "gpfs", "ro")  # downgrade
    try:
        g.run(until=ncsa.mmmount("gpfs-r", "n0", access="rw"))
        rw_on_ro = "allowed (BUG)"
    except MountAuthError:
        rw_on_ro = "refused"
    result.metrics["rw_on_ro_refused"] = 1.0 if rw_on_ro == "refused" else 0.0
    result.notes = (
        f"rw mount against ro grant: {rw_on_ro}; encryption tax is the "
        "per-node software-crypto ceiling (see repro.auth.cipher)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.harness import format_result

    print(format_result(run_e9()))
