"""Storage arrays and LUNs.

A :class:`StorageArray` is a brick (DS4100, FastT600): two controllers,
each owning a share of the RAID sets. A :class:`Lun` is one exported RAID
set reached through its owning controller — an IO passes the controller
stage then the RAID stage, so per-IO latency adds while throughput is set
by whichever stage saturates first (for sequential streams on a DS4100
that is the controller, hence the paper's "200 MB/s per controller"
annotation on Fig 1).

Factories build the paper's configurations:

* :func:`make_ds4100` — 67 × 250 GB SATA, seven 8+P sets + 4 hot spares,
  dual controllers (paper Fig 9: "seven 8+P RAID sets ... remaining unused
  drives function as hot spares").
* :func:`make_fastt600` — the SC'04 StorCloud brick.
"""

from __future__ import annotations

from typing import Generator, List

from repro.sim.kernel import Event, Simulation
from repro.storage.controller import (
    Controller,
    ControllerSpec,
    DS4100_CONTROLLER,
    FASTT600_CONTROLLER,
)
from repro.storage.disk import DiskSpec, FC_2005, SATA_2005
from repro.storage.raid import RaidSet


class Lun:
    """One exported RAID set behind a controller."""

    def __init__(self, name: str, controller: Controller, raid: RaidSet) -> None:
        self.name = name
        self.controller = controller
        self.raid = raid
        self.sim = controller.sim

    @property
    def capacity(self) -> float:
        return self.raid.capacity

    def io(self, kind: str, nbytes: float, sequential: bool = True) -> Event:
        """Controller stage then RAID stage; fires when data is on/off media."""
        return self.sim.process(self._io(kind, nbytes, sequential), name=f"{self.name}-{kind}")

    def _io(self, kind: str, nbytes: float, sequential: bool) -> Generator[Event, None, None]:
        yield self.controller.transfer(kind, nbytes)
        yield self.raid.io(kind, nbytes, sequential)


class StorageArray:
    """A dual-controller brick exporting one LUN per RAID set."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        controller_spec: ControllerSpec,
        disk_spec: DiskSpec,
        raid_sets: int,
        data_disks: int = 8,
        parity_disks: int = 1,
        hot_spares: int = 0,
        detailed: bool = False,
    ) -> None:
        if raid_sets < 1:
            raise ValueError("need at least one RAID set")
        self.sim = sim
        self.name = name
        self.disk_spec = disk_spec
        self.hot_spares = hot_spares
        self.controllers = [
            Controller(sim, controller_spec, name=f"{name}.ctrl{i}") for i in range(2)
        ]
        self.luns: List[Lun] = []
        for i in range(raid_sets):
            raid = RaidSet(
                sim,
                disk_spec,
                data_disks=data_disks,
                parity_disks=parity_disks,
                detailed=detailed,
                name=f"{name}.r{i}",
            )
            # Alternate RAID sets between the two controllers/loops (Fig 9).
            ctrl = self.controllers[i % 2]
            self.luns.append(Lun(f"{name}.lun{i}", ctrl, raid))

    @property
    def drive_count(self) -> int:
        per_set = self.luns[0].raid.data_disks + self.luns[0].raid.parity_disks
        return len(self.luns) * per_set + self.hot_spares

    def fail_disk(self, lun_index: int):
        """A drive in one RAID set dies; auto-rebuild onto a hot spare.

        Returns the rebuild-complete event when a spare was available
        (Fig 9's "remaining unused drives function as hot spares"), or
        ``None`` if the brick is out of spares and the set stays degraded
        until an operator replaces the drive.
        """
        lun = self.luns[lun_index]
        lun.raid.fail_disk()
        if self.hot_spares > 0 and lun.raid.state.value == "degraded":
            self.hot_spares -= 1
            return lun.raid.rebuild()
        return None

    @property
    def raw_capacity(self) -> float:
        """Raw bytes across all drives including parity and spares."""
        return self.drive_count * self.disk_spec.capacity

    @property
    def usable_capacity(self) -> float:
        return sum(lun.capacity for lun in self.luns)


def make_ds4100(sim: Simulation, name: str, detailed: bool = False) -> StorageArray:
    """The paper's SATA brick: 67 × 250 GB, 7 × (8+P), 4 hot spares."""
    array = StorageArray(
        sim,
        name,
        controller_spec=DS4100_CONTROLLER,
        disk_spec=SATA_2005,
        raid_sets=7,
        data_disks=8,
        parity_disks=1,
        hot_spares=4,
        detailed=detailed,
    )
    assert array.drive_count == 67  # 7*9 + 4, per Fig 9
    return array


def make_fastt600(sim: Simulation, name: str, detailed: bool = False) -> StorageArray:
    """SC'04 StorCloud brick: FC drives, dual controllers."""
    return StorageArray(
        sim,
        name,
        controller_spec=FASTT600_CONTROLLER,
        disk_spec=FC_2005,
        raid_sets=8,
        data_disks=8,
        parity_disks=1,
        hot_spares=2,
        detailed=detailed,
    )
