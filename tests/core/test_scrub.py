"""Background scrubber: at-rest verification, repair, and real I/O cost."""

from repro.core.replication import ReplicationPolicy
from repro.core.scrub import Scrubber

from tests.core.testbed import mounted, run_io, small_gfs

BS = 256 * 1024
PAYLOAD = 8 * BS


def _build(copies=2, store_data=True):
    g, cluster, fs, _ = small_gfs(
        nsd_servers=4,
        store_data=store_data,
        replication=ReplicationPolicy(
            copies=copies, quorum="all", verify_reads=store_data
        ),
    )
    m = mounted(g, cluster, node="c0")

    def gen():
        h = yield m.open("/f", "w", create=True)
        if store_data:
            yield m.write(h, bytes(range(256)) * (PAYLOAD // 256))
        else:
            yield m.write(h, PAYLOAD)
        yield m.close(h)

    run_io(g, gen())
    return g, fs, m


def _all_at_rest_clean(fs):
    inode = fs.namespace.resolve("/f")
    return all(
        fs.nsds[nsd_id].verify_full(phys)
        for b in inode.blocks
        for nsd_id, phys in fs.replica_placements(inode, b)
    )


class TestScrubRepairs:
    def test_cold_rot_found_and_rebuilt(self):
        g, fs, _ = _build()
        inode = fs.namespace.resolve("/f")
        # Rot a *secondary* replica: no reader will ever touch it, so
        # only the scrubber can notice.
        victim_nsd, victim_phys = fs.replica_placements(inode, 3)[1]
        fs.nsds[victim_nsd].corrupt(victim_phys)
        assert not _all_at_rest_clean(fs)

        scrubber = Scrubber(g.sim, fs, interval=0.05).start()
        g.run(until=g.sim.timeout(2.0))
        scrubber.stop()
        assert scrubber.rot_found == 1
        assert scrubber.repairs == 1
        assert scrubber.repair_failures == 0
        assert fs.nsds[victim_nsd].verify_full(victim_phys)
        assert _all_at_rest_clean(fs)

    def test_size_only_mode_repair_clears_poison(self):
        # No byte contents at all: poison is the authoritative rot marker
        # and a full-block rewrite from the good copy must clear it.
        g, fs, _ = _build(store_data=False)
        inode = fs.namespace.resolve("/f")
        victim_nsd, victim_phys = fs.replica_placements(inode, 1)[1]
        fs.nsds[victim_nsd].corrupt(victim_phys)
        assert not fs.nsds[victim_nsd].verify_full(victim_phys)

        scrubber = Scrubber(g.sim, fs, interval=0.05).start()
        g.run(until=g.sim.timeout(2.0))
        scrubber.stop()
        assert scrubber.repairs == 1
        assert fs.nsds[victim_nsd].verify_full(victim_phys)

    def test_no_clean_copy_is_a_repair_failure(self):
        g, fs, _ = _build()
        inode = fs.namespace.resolve("/f")
        for nsd_id, phys in fs.replica_placements(inode, 0):
            fs.nsds[nsd_id].corrupt(phys)
        scrubber = Scrubber(g.sim, fs, interval=0.05).start()
        g.run(until=g.sim.timeout(0.5))
        scrubber.stop()
        assert scrubber.repair_failures >= 1
        # both copies are still rotten — nothing to heal from
        assert not _all_at_rest_clean(fs)


class TestScrubCost:
    def test_scan_pays_time_and_bandwidth(self):
        g, fs, _ = _build()
        rate = 4 * PAYLOAD  # bytes/s → one sweep costs real sim seconds
        scrubber = Scrubber(g.sim, fs, interval=0.01, rate=rate).start()
        t0 = g.sim.now
        while scrubber.sweeps == 0:
            g.run(until=g.sim.timeout(0.1))
        scrubber.stop()
        # 8 blocks × 2 replicas per sweep (a second sweep may have
        # started before we observed the first completing), throttled
        # at `rate`
        assert scrubber.blocks_scanned >= 16
        assert scrubber.bytes_read == scrubber.blocks_scanned * BS
        assert g.sim.now - t0 >= 16 * BS / rate

    def test_clean_filesystem_never_repairs(self):
        g, fs, _ = _build()
        scrubber = Scrubber(g.sim, fs, interval=0.05).start()
        g.run(until=g.sim.timeout(0.5))
        scrubber.stop()
        assert scrubber.sweeps >= 1
        assert scrubber.rot_found == 0
        assert scrubber.repairs == 0

    def test_metrics_shape(self):
        g, fs, _ = _build()
        scrubber = Scrubber(g.sim, fs)
        metrics = scrubber.metrics()
        for key in (
            "scrub_sweeps",
            "scrub_blocks_scanned",
            "scrub_rot_found",
            "scrub_repairs",
            "scrub_repair_failures",
            "scrub_bytes_read",
        ):
            assert key in metrics
            assert isinstance(metrics[key], float)
