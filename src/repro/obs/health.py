"""``python -m repro health`` — fleet health report over a metrics dir.

Reads the artifacts :func:`repro.obs.export.export_metrics_dir` wrote
(``<id>.metrics.jsonl`` time series, ``<id>.prom`` final snapshot,
``<id>.meta.json`` phases/SLO metadata) and renders, per experiment:

* the SLO table (objective, target, compliance, error-budget burn);
* per-phase read latency (p50/p99) and availability, when the
  experiment declared phases (E13's nominal/degraded/failed-over/
  recovered windows);
* fleet rollups: per-NSD-server bytes moved, per-client read latency
  percentiles, per-link peak utilization.

Output is deterministic text (and optionally a dependency-free static
HTML page via ``--html``): every figure is recomputed from the JSONL
rows with the same arithmetic the experiments used, so the report is
bit-identical across same-seed runs.
"""

from __future__ import annotations

import argparse
import html as _html
import json
import os
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram, parse_key
from repro.obs.slo import phase_stats
from repro.obs.export import read_jsonl, validate_snapshot_row

#: Metric families the rollups read. Kept in one place so instrumentation
#: renames fail loudly here rather than silently emptying the report.
CLIENT_LATENCY = "client.read.latency"
CLIENT_OK = "client.read.ok"
CLIENT_ERR = "client.read.errors"
SERVER_BYTES = "nsd.server.bytes"
LINK_UTIL = "net.link.utilization"
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_HIT_RATIO = "cache.hit_ratio"
GATEWAY_OFFLOAD = "gateway.origin_offload"
GATEWAY_DIRTY = "gateway.dirty_queue"
POOL_HITS = "client.pagepool.hits"
POOL_MISSES = "client.pagepool.misses"
POOL_EVICTIONS = "client.pagepool.evictions"
MANAGER_DOWN = "tokens.manager_down"
TAKEOVER_LATENCY = "tokens.takeover_latency"
TAKEOVER_MTTR = "tokens.takeover_mttr"
DETECTION_LATENCY = "faults.detection_latency"
FAULT_MTTR = "faults.mttr"
FLOW_ACTIVE = "flow.active"
FLOW_RECOMPUTES = "flow.recomputes"
SOLVED_ROWS = "fairshare.solved_rows"
CLASSES = "flowengine.classes"
CLASS_COLS = "fairshare.class_cols"
AGG_RATIO = "flowengine.aggregation_ratio"


def load_experiment(metrics_dir: str, exp_id: str) -> dict:
    """Load one experiment's artifacts (meta optional, rows required)."""
    jsonl = os.path.join(metrics_dir, f"{exp_id}.metrics.jsonl")
    rows = read_jsonl(jsonl)
    for row in rows:
        validate_snapshot_row(row)
    meta: dict = {}
    meta_path = os.path.join(metrics_dir, f"{exp_id}.meta.json")
    if os.path.exists(meta_path):
        with open(meta_path) as fh:
            meta = json.load(fh)
    return {"exp_id": exp_id, "rows": rows, "meta": meta}


def discover(metrics_dir: str) -> List[str]:
    ids = [
        f[: -len(".metrics.jsonl")]
        for f in os.listdir(metrics_dir)
        if f.endswith(".metrics.jsonl")
    ]
    return sorted(ids)


# -- rollups -----------------------------------------------------------------


def _last_row(rows: List[dict]) -> Optional[dict]:
    return rows[-1] if rows else None


def _fmt_ms(v: Optional[float]) -> str:
    return "-" if v is None else f"{v * 1e3:.2f} ms"


def _fmt_pct(v: Optional[float]) -> str:
    return "-" if v is None else f"{v * 100:.3f}%"


def _fmt_burn(v: Optional[float]) -> str:
    return "-" if v is None else f"{v:.2f}x"


def client_rollup(rows: List[dict]) -> List[dict]:
    """Per-client read latency percentiles from the final scrape."""
    last = _last_row(rows)
    if last is None:
        return []
    out = []
    for key in sorted(last.get("histograms", {})):
        family, labels = parse_key(key)
        if family != CLIENT_LATENCY:
            continue
        h = Histogram.from_dict(last["histograms"][key])
        if h.count == 0:
            continue
        out.append({
            "client": labels.get("client", "-"),
            "reads": h.count,
            "p50": h.quantile(0.50),
            "p99": h.quantile(0.99),
            "max": h.max,
        })
    return out


def server_rollup(rows: List[dict]) -> List[dict]:
    """Per-NSD-server bytes in/out from the final scrape."""
    last = _last_row(rows)
    if last is None:
        return []
    per: Dict[str, Dict[str, float]] = {}
    for key, v in last.get("counters", {}).items():
        family, labels = parse_key(key)
        if family != SERVER_BYTES:
            continue
        server = labels.get("server", "-")
        per.setdefault(server, {"in": 0.0, "out": 0.0})
        per[server][labels.get("dir", "out")] = v
    return [
        {"server": s, "bytes_in": d["in"], "bytes_out": d["out"]}
        for s, d in sorted(per.items())
    ]


def cache_rollup(rows: List[dict]) -> List[dict]:
    """Per-gateway cache effectiveness from the final scrape."""
    last = _last_row(rows)
    if last is None:
        return []
    counters = last.get("counters", {})
    gauges = last.get("gauges", {})
    per: Dict[str, Dict[str, float]] = {}

    def bucket(labels: Dict[str, str]) -> Dict[str, float]:
        gw = labels.get("gw", "-")
        return per.setdefault(gw, {
            "hits": 0.0, "misses": 0.0, "hit_ratio": 0.0,
            "offload": 0.0, "dirty": 0.0,
        })

    for key, v in counters.items():
        family, labels = parse_key(key)
        if family == CACHE_HITS:
            bucket(labels)["hits"] = v
        elif family == CACHE_MISSES:
            bucket(labels)["misses"] = v
    for key, v in gauges.items():
        family, labels = parse_key(key)
        if family == CACHE_HIT_RATIO:
            bucket(labels)["hit_ratio"] = v
        elif family == GATEWAY_OFFLOAD:
            bucket(labels)["offload"] = v
        elif family == GATEWAY_DIRTY:
            bucket(labels)["dirty"] = v
    return [
        {"gw": gw, **d} for gw, d in sorted(per.items())
    ]


def pagepool_rollup(rows: List[dict]) -> List[dict]:
    """Per-client page-pool behaviour from the final scrape."""
    last = _last_row(rows)
    if last is None:
        return []
    per: Dict[str, Dict[str, float]] = {}
    for key, v in last.get("counters", {}).items():
        family, labels = parse_key(key)
        if family not in (POOL_HITS, POOL_MISSES, POOL_EVICTIONS):
            continue
        client = labels.get("client", "-")
        d = per.setdefault(
            client, {"hits": 0.0, "misses": 0.0, "evictions": 0.0}
        )
        attr = family.rsplit(".", 1)[1]
        d[attr] += v
    out = []
    for client, d in sorted(per.items()):
        total = d["hits"] + d["misses"]
        out.append({
            "client": client,
            **d,
            "hit_ratio": d["hits"] / total if total else 0.0,
        })
    return out


def control_plane_rollup(rows: List[dict]) -> List[dict]:
    """Fault/failover posture from the final scrape.

    One row per signal: control-plane outages (``tokens.manager_down``),
    manager takeover latency and MTTR, and data-plane detection latency
    and node MTTR — present only for runs that armed the fault subsystem,
    so nominal experiments render no section at all.
    """
    last = _last_row(rows)
    if last is None:
        return []
    out: List[dict] = []
    downs = sum(
        v
        for key, v in last.get("counters", {}).items()
        if parse_key(key)[0] == MANAGER_DOWN
    )
    if downs:
        out.append({"signal": "manager outages", "count": int(downs),
                    "mean": None, "max": None})
    for family, label in (
        (TAKEOVER_LATENCY, "manager takeover latency"),
        (TAKEOVER_MTTR, "manager takeover MTTR"),
        (DETECTION_LATENCY, "crash detection latency"),
        (FAULT_MTTR, "node MTTR"),
    ):
        for key in sorted(last.get("histograms", {})):
            if parse_key(key)[0] != family:
                continue
            h = Histogram.from_dict(last["histograms"][key])
            if h.count == 0:
                continue
            out.append({
                "signal": label,
                "count": h.count,
                "mean": h.sum / h.count,
                "max": h.max,
            })
    return out


def solver_rollup(rows: List[dict]) -> List[dict]:
    """Rate-solver posture per engine from the final scrape.

    One row per simulation universe (``sim`` label): active flows, live
    route classes, solver columns, the aggregation ratio (member flows
    per solver column — the dimension reduction route-class aggregation
    bought), and cumulative recompute work.
    """
    last = _last_row(rows)
    if last is None:
        return []
    per: Dict[str, Dict[str, float]] = {}

    def bucket(labels: Dict[str, str]) -> Dict[str, float]:
        sim = labels.get("sim", "-")
        return per.setdefault(sim, {
            "active": 0.0, "classes": 0.0, "cols": 0.0,
            "ratio": 1.0, "recomputes": 0.0, "solved_rows": 0.0,
        })

    for key, v in last.get("gauges", {}).items():
        family, labels = parse_key(key)
        if family == FLOW_ACTIVE:
            bucket(labels)["active"] = v
        elif family == CLASSES:
            bucket(labels)["classes"] = v
        elif family == CLASS_COLS:
            bucket(labels)["cols"] = v
        elif family == AGG_RATIO:
            bucket(labels)["ratio"] = v
    for key, v in last.get("counters", {}).items():
        family, labels = parse_key(key)
        if family == FLOW_RECOMPUTES:
            bucket(labels)["recomputes"] = v
        elif family == SOLVED_ROWS:
            bucket(labels)["solved_rows"] = v
    return [{"sim": sim, **d} for sim, d in sorted(per.items())]


def link_rollup(rows: List[dict]) -> List[dict]:
    """Per-link mean + peak utilization over the whole time series."""
    stats: Dict[str, List[float]] = {}
    for row in rows:
        for key, v in row.get("gauges", {}).items():
            family, labels = parse_key(key)
            if family != LINK_UTIL:
                continue
            stats.setdefault(labels.get("link", "-"), []).append(v)
    return [
        {
            "link": link,
            "mean": sum(vals) / len(vals),
            "peak": max(vals),
            "samples": len(vals),
        }
        for link, vals in sorted(stats.items())
    ]


# -- text rendering ----------------------------------------------------------


def _table(headers: List[str], rows: List[List[str]], indent: str = "  ") -> List[str]:
    if not rows:
        return [indent + "(no data)"]
    widths = [
        max(len(headers[i]), max(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append(
            indent + "  ".join(c.ljust(widths[i]) for i, c in enumerate(r))
        )
    return lines


def _gb(v: float) -> str:
    return f"{v / 1e9:.2f} GB"


def render_experiment(exp: dict) -> List[str]:
    rows = exp["rows"]
    meta = exp["meta"]
    lines = [f"== {exp['exp_id']} =="]
    if rows:
        lines.append(
            f"  scrapes: {len(rows)}  sim time: "
            f"{rows[0]['t']:.2f}s .. {rows[-1]['t']:.2f}s"
        )

    slo = meta.get("slo") or []
    if slo:
        lines.append("")
        lines.append("  SLOs:")
        body = []
        for s in slo:
            body.append([
                s["name"],
                s["kind"],
                _fmt_pct(s["target"]),
                _fmt_pct(s["compliance"]),
                _fmt_burn(s["burn_rate"]),
                _fmt_burn(s["max_window_burn"]),
                "BREACHED" if s["breached"] else "ok",
            ])
        lines += _table(
            ["objective", "kind", "target", "compliance",
             "burn", "max window burn", "status"],
            body,
        )

    phases = meta.get("phases") or []
    if phases and rows:
        stats = phase_stats(rows, phases, CLIENT_LATENCY, CLIENT_OK, CLIENT_ERR)
        lines.append("")
        lines.append("  Phases (client reads):")
        body = []
        for p in stats:
            body.append([
                p["name"],
                f"{p['t0']:.2f}-{p['t1']:.2f}s",
                str(p["reads"]),
                _fmt_ms(p["p50"]),
                _fmt_ms(p["p99"]),
                _fmt_pct(p["availability"]),
            ])
        lines += _table(
            ["phase", "window", "reads", "read p50", "read p99",
             "availability"],
            body,
        )

    clients = client_rollup(rows)
    if clients:
        lines.append("")
        lines.append("  Clients:")
        lines += _table(
            ["client", "reads", "p50", "p99", "max"],
            [
                [c["client"], str(c["reads"]), _fmt_ms(c["p50"]),
                 _fmt_ms(c["p99"]), _fmt_ms(c["max"])]
                for c in clients
            ],
        )

    servers = server_rollup(rows)
    if servers:
        lines.append("")
        lines.append("  NSD servers:")
        lines += _table(
            ["server", "bytes in", "bytes out"],
            [
                [s["server"], _gb(s["bytes_in"]), _gb(s["bytes_out"])]
                for s in servers
            ],
        )

    gateways = cache_rollup(rows)
    if gateways:
        lines.append("")
        lines.append("  Caching gateways:")
        lines += _table(
            ["gateway", "hits", "misses", "hit ratio", "origin offload",
             "dirty queue"],
            [
                [g["gw"], f"{g['hits']:.0f}", f"{g['misses']:.0f}",
                 _fmt_pct(g["hit_ratio"]), _fmt_pct(g["offload"]),
                 f"{g['dirty']:.0f}"]
                for g in gateways
            ],
        )

    pools = pagepool_rollup(rows)
    if pools:
        lines.append("")
        lines.append("  Client page pools:")
        lines += _table(
            ["client", "hits", "misses", "evictions", "hit ratio"],
            [
                [p["client"], f"{p['hits']:.0f}", f"{p['misses']:.0f}",
                 f"{p['evictions']:.0f}", _fmt_pct(p["hit_ratio"])]
                for p in pools
            ],
        )

    control = control_plane_rollup(rows)
    if control:
        lines.append("")
        lines.append("  Control plane / failures:")
        lines += _table(
            ["signal", "events", "mean", "max"],
            [
                [c["signal"], str(c["count"]),
                 "-" if c["mean"] is None else f"{c['mean'] * 1e3:.1f} ms",
                 "-" if c["max"] is None else f"{c['max'] * 1e3:.1f} ms"]
                for c in control
            ],
        )

    solver = solver_rollup(rows)
    if solver:
        lines.append("")
        lines.append("  Rate solver:")
        lines += _table(
            ["sim", "active flows", "classes", "solver cols",
             "agg ratio", "recomputes", "solved rows"],
            [
                [s["sim"], f"{s['active']:.0f}", f"{s['classes']:.0f}",
                 f"{s['cols']:.0f}", f"{s['ratio']:.1f}x",
                 f"{s['recomputes']:.0f}", f"{s['solved_rows']:.0f}"]
                for s in solver
            ],
        )

    links = link_rollup(rows)
    if links:
        lines.append("")
        lines.append("  Links:")
        lines += _table(
            ["link", "mean util", "peak util", "samples"],
            [
                [k["link"], _fmt_pct(k["mean"]), _fmt_pct(k["peak"]),
                 str(k["samples"])]
                for k in links
            ],
        )
    return lines


def render_report(metrics_dir: str, exp_ids: Optional[List[str]] = None) -> str:
    ids = exp_ids or discover(metrics_dir)
    if not ids:
        return f"no metrics found in {metrics_dir}\n"
    blocks = [f"repro fleet health — {len(ids)} experiment(s)", ""]
    for exp_id in ids:
        blocks += render_experiment(load_experiment(metrics_dir, exp_id))
        blocks.append("")
    return "\n".join(blocks)


def render_html(metrics_dir: str, exp_ids: Optional[List[str]] = None) -> str:
    """Static, dependency-free HTML version of the text report."""
    text = render_report(metrics_dir, exp_ids)
    return (
        "<!doctype html>\n<html><head><meta charset='utf-8'>"
        "<title>repro fleet health</title>"
        "<style>body{font-family:monospace;background:#111;color:#ddd;"
        "padding:2em}pre{line-height:1.4}</style>"
        "</head><body><pre>"
        + _html.escape(text)
        + "</pre></body></html>\n"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro health",
        description="Fleet health report over an exported --metrics-dir.",
    )
    parser.add_argument("--metrics-dir", required=True,
                        help="directory written by repro run/report --metrics-dir")
    parser.add_argument("--exp", action="append", default=None,
                        help="restrict to experiment id(s); default: all found")
    parser.add_argument("--out", default=None,
                        help="write the text report to this file (default stdout)")
    parser.add_argument("--html", default=None,
                        help="also write a static HTML report to this file")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.metrics_dir):
        parser.error(f"not a directory: {args.metrics_dir}")
    report = render_report(args.metrics_dir, args.exp)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
    else:
        print(report, end="")
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_html(args.metrics_dir, args.exp))
    return 0
