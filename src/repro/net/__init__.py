"""Flow-level (fluid) network simulation.

The paper's evaluation is entirely about sustained TCP throughput across
shared WAN paths (SCinet/TeraGrid links), so the network model is a fluid
one: a transfer is a :class:`~repro.net.flow.Flow` occupying a path of
:class:`~repro.net.link.Link` objects; whenever the set of active flows
changes, link bandwidth is re-divided max-min-fairly subject to each flow's
TCP rate cap (window/RTT and Mathis loss limits — :mod:`repro.net.tcp`).

This reproduces the three phenomena the paper measures:

* a single TCP stream collapses with RTT (window-limited),
* many parallel NSD streams aggregate to ~line rate despite 80 ms RTT,
* co-located flows share bottleneck links fairly (SC'04's three 10 GbE
  links each carrying 7–9 Gb/s).
"""

from repro.net.tcp import TcpModel
from repro.net.link import Link
from repro.net.topology import Network, NetNode
from repro.net.flow import Flow, FlowEngine
from repro.net.fairshare import FairshareState, max_min_rates
from repro.net.fcip import FcipTunnel, add_fcip_tunnel
from repro.net.message import MessageService

__all__ = [
    "TcpModel",
    "Link",
    "Network",
    "NetNode",
    "Flow",
    "FlowEngine",
    "FairshareState",
    "max_min_rates",
    "FcipTunnel",
    "add_fcip_tunnel",
    "MessageService",
]
