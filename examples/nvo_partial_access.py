#!/usr/bin/env python
"""NVO: why a central GFS beats shipping 50 TB to every site (§1, §5).

"At 50 Terabytes per location, this was a noticeable strain on storage
resources and if a single, central, site could maintain the dataset this
would be extremely helpful to all the sites who could access it in an
efficient manner."

The script hosts a (scaled) NVO catalog on the SDSC production GFS, runs
database-style cutout queries from ANL and NCSA over the TeraGrid, and
compares the bytes that actually moved against replicating the catalog.

Run:  python examples/nvo_partial_access.py
"""

import numpy as np

from repro.topology.sdsc2005 import build_sdsc2005
from repro.util.units import GB, KiB, MiB, fmt_bytes, fmt_time
from repro.workloads.nvo import NvoQueryStream


CATALOG_BYTES = GB(4)  # stands in for the 50 TB catalog (same code path)
QUERIES_PER_SITE = 150
CUTOUT_BYTES = int(KiB(512))


def main():
    scenario = build_sdsc2005(
        nsd_servers=32,
        ds4100_count=16,
        sdsc_clients=1,
        anl_clients=2,
        ncsa_clients=2,
        store_data=False,
    )
    g = scenario.gfs
    print(f"production GFS: {scenario.fs.capacity / 1e12:.0f} TB usable, "
          f"{len(scenario.fs.nsds)} NSDs")

    # curate the catalog once, at the central site
    curator = scenario.mount_clients("sdsc", 1, pagepool_bytes=MiB(512))[0]

    def curate():
        handle = yield curator.open("/nvo/catalog.fits", "w", create=True)
        yield curator.write(handle, int(CATALOG_BYTES))
        yield curator.close(handle)

    def top():
        yield curator.mkdir("/nvo")
        yield g.sim.process(curate(), name="curate")

    g.run(until=g.sim.process(top(), name="top"))
    print(f"catalog curated: {fmt_bytes(CATALOG_BYTES)} at SDSC (single copy)")

    # remote sites query it directly — no replication
    total_moved = 0.0
    for site in ("anl", "ncsa"):
        mounts = scenario.mount_clients(site, 2, readahead=0)  # random access
        rng = np.random.default_rng(hash(site) % 2**32)
        t0 = g.sim.now
        streams = [
            NvoQueryStream(
                mount,
                "/nvo/catalog.fits",
                queries=QUERIES_PER_SITE // len(mounts),
                bytes_per_query=CUTOUT_BYTES,
                rng=rng,
                zipf_regions=32,
            ).run()
            for mount in mounts
        ]
        g.run(until=g.sim.all_of(streams))
        moved = sum(p.value.bytes_read for p in streams)
        queries = sum(p.value.ops for p in streams)
        total_moved += moved
        print(
            f"{site}: {queries} cutout queries, {fmt_bytes(moved)} moved, "
            f"{fmt_time((g.sim.now - t0) / queries)} per query"
        )

    replication_cost = 2 * CATALOG_BYTES  # one copy per remote site
    print(
        f"\nbytes moved via GFS: {fmt_bytes(total_moved)} "
        f"vs replicating to both sites: {fmt_bytes(replication_cost)} "
        f"({replication_cost / total_moved:.0f}x more, plus the disk to hold it)"
    )


if __name__ == "__main__":
    main()
